"""The serving runtime: request streams over a pool of simulated MCUs.

:class:`ServeRuntime` wires the subsystem together: a verified
:class:`~repro.serve.registry.ModelArtifact` is replicated onto
``n_devices`` simulated boards, each driven by its own worker thread;
requests enter through admission control into one shared policy-ordered
queue; workers take batches, execute them cycle-exactly (on the fastpath
translating engine by default — ``ServeConfig.engine`` selects the
reference interpreter, or ``"fastpath-v2"``, which serves each admitted
batch in one content-specialized fused call with unchanged per-request
accounting), and retry brown-outs on healthy devices
with capped exponential backoff.  Every offered request ends in exactly one terminal
outcome — completed, rejected, or failed — so the conservation law

    completed + rejected + failed == offered

holds under any fault plan; tests assert it.

Concurrency model: real threads execute simulated devices concurrently
(the interpreter is pure Python, so device workers interleave on the
GIL but block only in the queue).  All *reported times are simulated
milliseconds*: each device advances its own clock by the cycles it
charges, and a request's latency is its completion time minus its trace
arrival time on that shared simulated timeline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeviceBrownoutError,
    InvalidInputError,
    ReproError,
    ServeError,
)
from repro.mcu.fastpath import DEFAULT_ENGINE, ENGINES
from repro.mcu.intermittent import PowerBudget
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.metrics import Histogram, MetricsRegistry
from repro.serve.pool import SimulatedDevice, build_pool
from repro.serve.registry import ModelArtifact
from repro.serve.request import (
    COMPLETED,
    FAILED,
    REJECTED,
    InferenceRequest,
    ServeOutcome,
)
from repro.serve.scheduler import BoundedRequestQueue
from repro.serve.tracing import (
    DEFAULT_TRACE_CAPACITY,
    Span,
    TraceCollector,
)


@dataclass(frozen=True)
class ServeConfig:
    """Tunable knobs of the runtime."""

    n_devices: int = 4
    policy: str = "fifo"               # "fifo" | "edf"
    max_queue_depth: int = 64
    max_batch: int = 4
    #: Retries after the first attempt; attempt count is capped at
    #: ``max_retries + 1`` before the request fails terminally.
    max_retries: int = 2
    backoff_base_ms: float = 2.0
    backoff_cap_ms: float = 50.0
    #: Drop requests whose deadline already passed when dequeued.
    shed_expired: bool = True
    #: Sim-time load shedding: reject a first-attempt request whose queue
    #: wait (device start − arrival, simulated ms) exceeds this bound.
    #: The depth bound protects host memory; this bound is what keeps
    #: *simulated* tail latency finite under open-loop overload, where
    #: real-time queue occupancy depends on host speed, not offered load.
    max_queue_wait_ms: float | None = None
    power_budget: PowerBudget | None = None
    fault_plan: FaultPlan | None = None
    #: Execution engine for every device replica: ``"fastpath"`` (the
    #: translating engine, default), ``"fastpath-v2"`` (content-
    #: specialized + batch-fused dispatch), or ``"interpreter"``
    #: (reference CPU).
    engine: str = DEFAULT_ENGINE
    #: Per-request span tracing (see :mod:`repro.serve.tracing`).  On by
    #: default — the collector is bounded, so long replays degrade to
    #: dropped spans rather than unbounded memory.
    tracing: bool = True
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    #: Track namespace stamped on every span (``"fleet-0"``), so multiple
    #: runtimes tracing in one process export distinguishable tracks.
    trace_namespace: str | None = None

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ConfigurationError("need at least one device")
        if self.max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {ENGINES}"
            )
        if self.trace_capacity <= 0:
            raise ConfigurationError("trace_capacity must be positive")


@dataclass(frozen=True)
class ServeReport:
    """End-of-replay summary in simulated time."""

    offered: int
    completed: int
    rejected: int
    failed: int
    makespan_ms: float
    throughput_rps: float              # completed per simulated second
    latency_ms: dict[str, float]       # count/mean/min/max/p50/p95/p99
    queue_ms: dict[str, float]
    device_utilization: dict[str, float]
    metrics: dict[str, Any]            # full MetricsRegistry snapshot
    engine: str = DEFAULT_ENGINE       # execution engine the fleet ran on
    outcomes: tuple[ServeOutcome, ...] = field(repr=False, default=())
    #: Raw per-device busy time — what utilization is computed from, and
    #: what the trace invariant ``busy_ms == Σ busy spans`` checks.
    device_busy_ms: dict[str, float] = field(default_factory=dict)
    #: The replay's span collector (``None`` when tracing is off).
    trace: TraceCollector | None = field(repr=False, default=None)

    @property
    def conserved(self) -> bool:
        return self.completed + self.rejected + self.failed == self.offered

    def format(self) -> str:
        lines = [
            f"offered {self.offered}  completed {self.completed}  "
            f"rejected {self.rejected}  failed {self.failed}",
            f"makespan {self.makespan_ms:.1f} sim-ms  "
            f"throughput {self.throughput_rps:.1f} req/sim-s",
            f"latency sim-ms  p50 {self.latency_ms['p50']:.2f}  "
            f"p95 {self.latency_ms['p95']:.2f}  "
            f"p99 {self.latency_ms['p99']:.2f}  "
            f"mean {self.latency_ms['mean']:.2f}",
            f"queue wait sim-ms  p50 {self.queue_ms['p50']:.2f}  "
            f"p95 {self.queue_ms['p95']:.2f}",
        ]
        for name, value in sorted(self.device_utilization.items()):
            lines.append(f"{name} utilization {value * 100:5.1f}%")
        return "\n".join(lines)


class ServeRuntime:
    """Multi-device inference server over one registered model."""

    def __init__(
        self,
        artifact: ModelArtifact,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.artifact = artifact
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer: TraceCollector | None = (
            TraceCollector(
                self.config.trace_capacity,
                namespace=self.config.trace_namespace,
            )
            if self.config.tracing else None
        )
        injector = (
            FaultInjector(self.config.fault_plan)
            if self.config.fault_plan is not None else None
        )
        self.devices: list[SimulatedDevice] = build_pool(
            artifact,
            self.config.n_devices,
            power_budget=self.config.power_budget,
            injector=injector,
            engine=self.config.engine,
            tracer=self.tracer,
        )
        self.metrics.label("engine", self.config.engine)
        self.queue = BoundedRequestQueue(
            policy=self.config.policy,
            max_depth=self.config.max_queue_depth,
            n_devices=self.config.n_devices,
        )
        self._threads: list[threading.Thread] = []
        self._outcomes: list[ServeOutcome] = []  # guarded_by: _outcome_lock
        self._outcome_lock = threading.Lock()
        # Guards the admission-side tallies below: `submit()` may be
        # called from many producer threads, and `n += 1` is not atomic.
        self._arrival_lock = threading.Lock()
        self._offered = 0  # guarded_by: _arrival_lock
        self._last_arrival_ms = 0.0  # guarded_by: _arrival_lock
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for device in self.devices:
            thread = threading.Thread(
                target=self._worker,
                args=(device,),
                name=f"serve-device-{device.device_id}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def drain(self) -> None:
        """Stop admissions, serve everything queued, join the workers."""
        self.queue.close()
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        self._started = False

    def __enter__(self) -> "ServeRuntime":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()

    # -- producer API ----------------------------------------------------

    def submit(self, request: InferenceRequest) -> bool:
        """Offer one request; returns False when admission shed it."""
        if not self._started:
            raise ServeError("runtime not started (use start() or `with`)")
        with self._arrival_lock:
            self._offered += 1
            self._last_arrival_ms = max(self._last_arrival_ms,
                                        request.arrival_ms)
        self.metrics.counter("requests.offered").inc()
        try:
            self.queue.offer(request)
        except AdmissionError as exc:
            self._record(
                ServeOutcome(
                    request_id=request.request_id,
                    status=REJECTED,
                    attempts=request.attempts,
                    reason=exc.reason,
                )
            )
            self._span(request, "shed", request.arrival_ms,
                       detail=exc.reason)
            self.metrics.counter("requests.rejected").inc()
            self.metrics.counter(f"rejected.{exc.reason}").inc()
            return False
        self._span(request, "admitted", request.arrival_ms)
        self.metrics.gauge("queue.depth").set(self.queue.depth)
        return True

    def replay(
        self, trace: list[InferenceRequest], *, pace: bool = True
    ) -> ServeReport:
        """Open-loop replay: offer the whole trace, drain, report.

        With ``pace`` (the default) arrivals are gated on the fleet's
        *simulated* clock: while a backlog exists, a request is not
        offered until the fleet has simulated up to its arrival time.
        Without pacing the driver floods the queue at host speed, and
        queue-depth rejections measure the host's interpreter speed
        rather than offered load versus fleet capacity.  Instantaneous
        bursts still hit the depth bound; sustained overload surfaces
        as growing simulated queue wait (see ``max_queue_wait_ms``).
        """
        self.start()
        for request in trace:
            if pace:
                while (
                    self.queue.depth > 0
                    and self._fleet_clock_ms() < request.arrival_ms
                ):
                    time.sleep(0.0002)
            self.submit(request)
        self.drain()
        return self.report()

    def _fleet_clock_ms(self) -> float:
        """How far the fleet has simulated (furthest device clock).

        Racy cross-thread float reads are fine here: the value is used
        only to pace the replay driver, never for accounting.
        """
        return max(device.clock_ms for device in self.devices)

    # -- worker side -----------------------------------------------------

    def _worker(self, device: SimulatedDevice) -> None:
        while True:
            batch = self.queue.take_batch(
                device.device_id, self.config.max_batch
            )
            if batch is None:
                return
            if not batch:
                continue
            try:
                device.begin_dispatch(
                    min(r.earliest_start_ms for r in batch)
                )
                self.metrics.counter("batches.dispatched").inc()
                self.metrics.histogram("batch_size").observe(len(batch))
                if device.supports_batch_fusion:
                    self._serve_batch_fused(device, batch)
                else:
                    for request in batch:
                        self._serve_one(device, request)
            finally:
                self.queue.batch_done()
            self.metrics.gauge("queue.depth").set(self.queue.depth)

    def _serve_one(
        self, device: SimulatedDevice, request: InferenceRequest
    ) -> None:
        # Where this attempt would start serving: the device cannot run
        # a request before it is eligible (arrival + backoff), and the
        # request cannot start before the device's clock.  Matches the
        # `start` the device computes in `execute()`.
        service_start = max(device.clock_ms, request.earliest_start_ms)
        if not self._preflight(device, request, service_start):
            return
        self._execute_and_complete(device, request)

    def _serve_batch_fused(
        self, device: SimulatedDevice, batch: list[InferenceRequest]
    ) -> None:
        """Serve one batch through a single fused device call.

        Preflight (deadline/queue-wait shedding, input validation) runs
        first against a *simulated* clock: on the fused engine every
        request's execute time is the same input-independent constant,
        so each request's service start — and therefore every shedding
        decision — is known before anything runs.  Spans, outcomes, and
        device accounting come out identical to the per-request path;
        only the host-side work is batched.
        """
        exec_ms = device.fused_exec_ms
        clock = device.clock_ms
        runnable: list[InferenceRequest] = []
        for request in batch:
            service_start = max(clock, request.earliest_start_ms)
            if not self._preflight(device, request, service_start):
                continue
            try:
                device.validate_request(request)
            except InvalidInputError as exc:
                # Mirrors the per-request handler: an invalid input
                # fails terminally without advancing the device clock.
                self._record(
                    ServeOutcome(
                        request_id=request.request_id,
                        status=FAILED,
                        device_id=device.device_id,
                        attempts=request.attempts + 1,
                        reason=f"invalid_input: {exc}",
                    )
                )
                self._span(request, "failed", service_start,
                           detail="invalid_input")
                self.metrics.counter("requests.failed").inc()
                continue
            runnable.append(request)
            clock = service_start + exec_ms
        if not runnable:
            return
        try:
            executions = device.execute_fused(runnable)
        except ReproError:
            # The fused call leaves no partial device state on failure,
            # so the per-request path can serve the batch instead (and
            # record the per-request errors conservation needs).
            for request in runnable:
                self._execute_and_complete(device, request)
            return
        self.metrics.counter("batches.fused").inc()
        for request, execution in zip(runnable, executions):
            self._complete(device, request, execution)

    def _preflight(
        self,
        device: SimulatedDevice,
        request: InferenceRequest,
        service_start: float,
    ) -> bool:
        """Shedding decisions for one attempt; True when it should run.

        ``service_start`` is where the attempt would begin serving —
        callers on the fused path pass a simulated projection of the
        device clock instead of its live value.
        """
        # The attempt's queueing interval: eligible-to-run until service
        # start.  First attempts become eligible at arrival; retries at
        # the end of their backoff.
        queued_from = (
            request.arrival_ms if request.attempts == 0
            else request.earliest_start_ms
        )
        if (
            self.config.shed_expired
            and request.deadline_ms is not None
            and service_start > request.deadline_ms
        ):
            self._span(request, "queued", queued_from, service_start)
            if request.attempts > 0:
                # A retried request was admitted once, at the door — the
                # scheduler contract says it can never be *rejected*
                # afterwards.  Backoff pushing it past its deadline is a
                # terminal *failure* (mirroring the queue_wait rule that
                # retries are never shed).
                self._record(
                    ServeOutcome(
                        request_id=request.request_id,
                        status=FAILED,
                        device_id=device.device_id,
                        attempts=request.attempts + 1,
                        reason="deadline_after_retry",
                    )
                )
                self._span(request, "failed", service_start,
                           detail="deadline_after_retry")
                self.metrics.counter("requests.failed").inc()
                self.metrics.counter("failed.deadline_after_retry").inc()
                return False
            # Shedding at dequeue: executing a request that already
            # missed its deadline wastes device time everyone else pays.
            self._record(
                ServeOutcome(
                    request_id=request.request_id,
                    status=REJECTED,
                    attempts=request.attempts + 1,
                    reason="deadline",
                )
            )
            self._span(request, "shed", service_start, detail="deadline")
            self.metrics.counter("requests.rejected").inc()
            self.metrics.counter("rejected.deadline").inc()
            return False
        if (
            self.config.max_queue_wait_ms is not None
            and request.attempts == 0  # retries are never shed
        ):
            wait = service_start - request.arrival_ms
            if wait > self.config.max_queue_wait_ms:
                self._record(
                    ServeOutcome(
                        request_id=request.request_id,
                        status=REJECTED,
                        attempts=request.attempts + 1,
                        reason="queue_wait",
                    )
                )
                self._span(request, "queued", queued_from, service_start)
                self._span(request, "shed", service_start,
                           detail="queue_wait")
                self.metrics.counter("requests.rejected").inc()
                self.metrics.counter("rejected.queue_wait").inc()
                return False
        self._span(request, "queued", queued_from, service_start)
        return True

    def _execute_and_complete(
        self, device: SimulatedDevice, request: InferenceRequest
    ) -> None:
        """One post-preflight attempt on the per-request device path."""
        service_start = max(device.clock_ms, request.earliest_start_ms)
        try:
            execution = device.execute(request)
        except DeviceBrownoutError:
            self.metrics.counter("device.brownouts").inc()
            self._retry_or_fail(device, request)
            return
        except InvalidInputError as exc:
            self._record(
                ServeOutcome(
                    request_id=request.request_id,
                    status=FAILED,
                    device_id=device.device_id,
                    attempts=request.attempts + 1,
                    reason=f"invalid_input: {exc}",
                )
            )
            self._span(request, "failed", service_start,
                       detail="invalid_input")
            self.metrics.counter("requests.failed").inc()
            return
        except ReproError as exc:
            # Any other library error is terminal for this request but
            # must never kill the worker thread: conservation requires
            # one outcome per offered request.
            self._record(
                ServeOutcome(
                    request_id=request.request_id,
                    status=FAILED,
                    device_id=device.device_id,
                    attempts=request.attempts + 1,
                    reason=f"{type(exc).__name__}: {exc}",
                )
            )
            self._span(request, "failed", service_start,
                       detail=type(exc).__name__)
            self.metrics.counter("requests.failed").inc()
            return
        self._complete(device, request, execution)

    def _complete(
        self,
        device: SimulatedDevice,
        request: InferenceRequest,
        execution,
    ) -> None:
        """Record one successful execution (per-request or fused path)."""
        latency = execution.end_ms - request.arrival_ms
        queue_wait = execution.start_ms - request.arrival_ms
        self._record(
            ServeOutcome(
                request_id=request.request_id,
                status=COMPLETED,
                label=execution.label,
                device_id=device.device_id,
                cycles=execution.cycles,
                latency_ms=latency,
                queue_ms=queue_wait,
                attempts=request.attempts + 1,
            )
        )
        self._span(request, "completed", execution.end_ms)
        self.metrics.counter("requests.completed").inc()
        self.metrics.histogram("latency_ms").observe(latency)
        self.metrics.histogram("queue_ms").observe(queue_wait)
        self.metrics.histogram("cycles").observe(execution.cycles)

    def _retry_or_fail(
        self, device: SimulatedDevice, request: InferenceRequest
    ) -> None:
        attempts_done = request.attempts + 1
        if attempts_done > self.config.max_retries:
            self._record(
                ServeOutcome(
                    request_id=request.request_id,
                    status=FAILED,
                    device_id=device.device_id,
                    attempts=attempts_done,
                    reason=(
                        f"brown-out on every attempt "
                        f"({attempts_done} tries, retry cap reached)"
                    ),
                )
            )
            self._span(request, "failed", device.clock_ms,
                       detail="retry_cap")
            self.metrics.counter("requests.failed").inc()
            return
        request.attempts = attempts_done
        request.avoid_device = device.device_id
        backoff = min(
            self.config.backoff_cap_ms,
            self.config.backoff_base_ms * (2 ** (attempts_done - 1)),
        )
        request.backoff_ms += backoff
        # The backoff interval: from the brown-out (the failing device's
        # clock) until the retry is eligible again.  A device that is far
        # ahead of the eligibility point collapses it to an instant.
        self._span(
            request, "backoff",
            min(device.clock_ms, request.earliest_start_ms),
            request.earliest_start_ms,
        )
        self.metrics.counter("requests.retries").inc()
        # Already admitted once: retries bypass admission control so no
        # request can be both rejected and failed.
        self.queue.offer(request, force=True)

    # -- reporting -------------------------------------------------------

    def _span(
        self,
        request: InferenceRequest,
        kind: str,
        start_ms: float,
        end_ms: float | None = None,
        *,
        device_id: int | None = None,
        detail: str | None = None,
    ) -> None:
        """Record one queue-track span for ``request`` (no-op untraced)."""
        if self.tracer is None:
            return
        self.tracer.record(
            Span(
                kind=kind,
                start_ms=start_ms,
                end_ms=start_ms if end_ms is None else end_ms,
                request_id=request.request_id,
                device_id=device_id,
                attempt=request.attempts + 1,
                detail=detail,
            )
        )

    def _record(self, outcome: ServeOutcome) -> None:
        with self._outcome_lock:
            self._outcomes.append(outcome)

    @property
    def outcomes(self) -> tuple[ServeOutcome, ...]:
        with self._outcome_lock:
            return tuple(self._outcomes)

    def report(self) -> ServeReport:
        outcomes = self.outcomes
        with self._arrival_lock:
            offered = self._offered
            last_arrival_ms = self._last_arrival_ms
        completed = sum(1 for o in outcomes if o.status == COMPLETED)
        rejected = sum(1 for o in outcomes if o.status == REJECTED)
        failed = sum(1 for o in outcomes if o.status == FAILED)
        makespan = max(
            [last_arrival_ms]
            + [device.clock_ms for device in self.devices]
        )
        utilization = {}
        busy = {}
        for device in self.devices:
            value = device.utilization(makespan)
            utilization[f"device.{device.device_id}"] = value
            busy[f"device.{device.device_id}"] = device.busy_ms
            self.metrics.gauge(
                f"device.{device.device_id}.utilization"
            ).set(value)
        snapshot = self.metrics.snapshot()
        throughput = (
            completed / (makespan / 1e3) if makespan > 0.0 else 0.0
        )
        return ServeReport(
            offered=offered,
            completed=completed,
            rejected=rejected,
            failed=failed,
            makespan_ms=makespan,
            throughput_rps=throughput,
            latency_ms=snapshot["histograms"].get(
                "latency_ms", Histogram().summary()
            ),
            queue_ms=snapshot["histograms"].get(
                "queue_ms", Histogram().summary()
            ),
            device_utilization=utilization,
            metrics=snapshot,
            engine=self.config.engine,
            outcomes=outcomes,
            device_busy_ms=busy,
            trace=self.tracer,
        )
