"""Request scheduling: bounded queues, policies, batching, admission.

The queue is the runtime's only shared mutable structure, so all
cross-thread coordination lives here:

- **Bounded depth + admission control** — `offer()` sheds load with a
  typed :class:`~repro.errors.AdmissionError` when the queue is full
  instead of queueing without bound (an open-loop arrival process would
  otherwise grow the queue — and tail latency — indefinitely).  Retries
  of already-admitted requests re-enter with ``force=True``; admission
  is decided once per request, at the door.
- **Policies** — ``"fifo"`` serves in arrival order; ``"edf"``
  (earliest deadline first) orders by absolute deadline, deadline-less
  requests last.  Both are heaps over a policy-specific key with a
  monotonic sequence number as the tiebreaker, so equal keys still
  serve in arrival order.
- **Batching** — a device takes up to ``max_batch`` requests per
  dispatch; the fixed per-dispatch overhead is paid once per batch.
- **Brown-out affinity** — a retried request remembers the device that
  failed it (``avoid_device``); `take_batch()` skips those entries so
  the retry lands on a healthy board (ignored for single-device pools,
  where there is no healthier board to prefer).
- **In-flight tracking** — a worker draining a closed queue only gets
  the exit signal once no other worker holds an in-flight batch.  A
  batch being executed elsewhere may still brown out and re-enter the
  queue; exiting early could strand that retry with no worker willing
  to take it.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro.analysis.annotations import guarded_by
from repro.errors import AdmissionError, ConfigurationError
from repro.serve.request import InferenceRequest

SCHEDULING_POLICIES = ("fifo", "edf")


def _policy_key(policy: str, request: InferenceRequest) -> tuple:
    if policy == "fifo":
        return (request.seq,)
    # EDF: earliest absolute deadline first; best-effort requests last.
    deadline = (
        request.deadline_ms if request.deadline_ms is not None
        else float("inf")
    )
    return (deadline, request.seq)


class BoundedRequestQueue:
    """Thread-safe, policy-ordered, depth-bounded request queue."""

    def __init__(
        self,
        policy: str = "fifo",
        max_depth: int = 64,
        n_devices: int = 1,
    ) -> None:
        if policy not in SCHEDULING_POLICIES:
            raise ConfigurationError(
                f"unknown scheduling policy {policy!r}; "
                f"expected one of {SCHEDULING_POLICIES}"
            )
        if max_depth <= 0:
            raise ConfigurationError("queue depth must be positive")
        self.policy = policy
        self.max_depth = max_depth
        self.n_devices = n_devices
        self._cv = threading.Condition()
        self._heap: list[tuple[tuple, int, InferenceRequest]] = []  # guarded_by: _cv
        self._closed = False  # guarded_by: _cv
        self._seq = itertools.count()
        self._in_flight = 0  # guarded_by: _cv

    # -- producer side ---------------------------------------------------

    def offer(self, request: InferenceRequest, *, force: bool = False) -> None:
        """Admit a request, or shed it with a typed rejection.

        ``force`` bypasses the depth bound (and the closed check) for
        requests that were already admitted once — retries must never be
        re-subjected to admission control or they could be lost.
        """
        with self._cv:
            if not force:
                if self._closed:
                    raise AdmissionError(
                        "runtime is draining; request not admitted",
                        reason="draining",
                    )
                if len(self._heap) >= self.max_depth:
                    raise AdmissionError(
                        f"queue full ({self.max_depth} pending); "
                        f"request {request.request_id} shed",
                        reason="queue_full",
                    )
            request.seq = next(self._seq)
            heapq.heappush(
                self._heap,
                (_policy_key(self.policy, request), request.seq, request),
            )
            self._cv.notify()

    def close(self) -> None:
        """Stop external admissions; wake consumers to drain and exit."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    # -- consumer side ---------------------------------------------------

    def take_batch(
        self,
        device_id: int,
        max_batch: int,
        timeout: float = 0.05,
    ) -> list[InferenceRequest] | None:
        """Up to ``max_batch`` requests for one dispatch.

        Returns ``[]`` when nothing eligible arrived within ``timeout``
        and ``None`` when the queue is closed, empty, and no other
        worker holds an in-flight batch (the worker's signal to exit —
        in-flight work elsewhere may yet brown out and re-enter).
        Callers must pair every non-empty batch with one
        :meth:`batch_done` call.
        """
        with self._cv:
            while True:
                batch, skipped_all = self._pop_eligible(
                    device_id, max_batch
                )
                if skipped_all:
                    # Everything pending avoids this device; let another
                    # worker grab it.
                    self._cv.notify()
                if batch:
                    self._in_flight += 1
                    return batch
                if (
                    self._closed and not self._heap
                    and self._in_flight == 0
                ):
                    return None
                if not self._cv.wait(timeout):
                    return []

    @guarded_by("_cv")
    def _pop_eligible(
        self, device_id: int, max_batch: int
    ) -> tuple[list[InferenceRequest], bool]:
        """Pop up to ``max_batch`` heap entries this device may serve,
        pushing back entries whose retry affinity avoids it.  Returns
        the batch and whether *only* avoiding entries were pending."""
        batch, skipped = [], []
        honour_avoid = self.n_devices > 1
        while self._heap and len(batch) < max_batch:
            key, seq, request = heapq.heappop(self._heap)
            if honour_avoid and request.avoid_device == device_id:
                skipped.append((key, seq, request))
            else:
                batch.append(request)
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return batch, bool(skipped) and not batch

    def batch_done(self) -> None:
        """Mark one taken batch as fully processed (retries included)."""
        with self._cv:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._cv.notify_all()

    @property
    def depth(self) -> int:
        with self._cv:
            return len(self._heap)
