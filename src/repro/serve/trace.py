"""Synthetic open-loop arrival traces.

An *open-loop* load generator emits requests on its own clock regardless
of how fast the fleet drains them — the standard way to expose queueing
and admission-control behaviour (a closed loop self-throttles and hides
both).  Arrivals are Poisson: exponential inter-arrival gaps at a
configured mean rate, from a seeded generator so every replay of a trace
is identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.request import InferenceRequest


def synthetic_trace(
    n_requests: int,
    rate_rps: float,
    input_shape: int,
    *,
    seed: int = 0,
    deadline_ms: float | None = None,
    input_scale: float = 1.0,
    inputs: np.ndarray | None = None,
) -> list[InferenceRequest]:
    """Build a Poisson arrival trace of ``n_requests`` at ``rate_rps``.

    ``rate_rps`` is the offered load in requests per simulated second.
    Input vectors are drawn from ``inputs`` (cycled) when given, else
    sampled uniformly in ``[0, input_scale)`` with ``input_shape``
    features.  ``deadline_ms`` is a *relative* deadline applied to every
    request (absolute deadline = arrival + deadline_ms).
    """
    if n_requests <= 0:
        raise ConfigurationError("trace needs at least one request")
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if deadline_ms is not None and deadline_ms <= 0:
        # A non-positive relative deadline is expired on arrival; catch
        # the misconfiguration here instead of shedding every request
        # deep inside the runtime.
        raise ConfigurationError(
            f"deadline_ms must be positive, got {deadline_ms}"
        )
    rng = np.random.default_rng(seed)
    gaps_ms = rng.exponential(1_000.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps_ms)
    if inputs is not None:
        inputs = np.asarray(inputs)
        if inputs.ndim != 2 or len(inputs) == 0:
            raise ConfigurationError("trace inputs must be a non-empty "
                                     "2-D array")
        if inputs.shape[1] != input_shape:
            # Mismatched features would otherwise fail request-by-request
            # inside device execution, long after trace construction.
            raise ConfigurationError(
                f"trace inputs have {inputs.shape[1]} features but "
                f"input_shape is {input_shape}"
            )
    trace = []
    for i in range(n_requests):
        if inputs is not None:
            x = inputs[i % len(inputs)]
        else:
            x = rng.uniform(
                0.0, input_scale, size=input_shape
            ).astype(np.float32)
        trace.append(
            InferenceRequest(
                request_id=i,
                x=x,
                arrival_ms=float(arrivals[i]),
                deadline_ms=(
                    float(arrivals[i]) + deadline_ms
                    if deadline_ms is not None else None
                ),
            )
        )
    return trace
