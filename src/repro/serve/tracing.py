"""Per-request span tracing for the serving runtime.

Aggregate metrics answer "how is the fleet doing"; they cannot answer
"what happened to request 4711".  This module records every request's
journey through the runtime as typed *spans* on the simulated timeline —
admission, queueing, backoff, dispatch overhead, execution, retries, and
the terminal outcome — so a single inference can be reconstructed, and
so tests can assert *invariants* that aggregate counters hide (span
overlap on a device, negative queue waits, busy time that does not match
the occupied timeline).

Span taxonomy (all times simulated milliseconds):

==================  =====================================================
kind                meaning
==================  =====================================================
``admitted``        instant: admission control accepted the request
``queued``          interval: eligible-to-run until device service start
``backoff``         interval: post-brown-out delay before the retry is
                    eligible again
``dispatch_overhead``  interval (device track): per-batch host-link +
                    DMA setup cost
``execute``         interval (device track): one inference attempt that
                    ran to completion
``retry``           interval (device track): device time wasted by a
                    browned-out attempt (whether or not another attempt
                    follows)
``completed``       instant, terminal: the request finished
``shed``            instant, terminal: admission/dequeue shed the request
``failed``          instant, terminal: the request failed terminally
==================  =====================================================

Every offered request ends in **exactly one** terminal span — the
per-request refinement of the conservation law.  Spans live on tracks:
``device_id is None`` is the queue track, anything else the device's
track.  :func:`verify_trace_invariants` checks the full invariant list
(see ``docs/serving.md``); the soak harness runs it after every replay.

The collector is bounded: past ``capacity`` spans it drops (and counts)
further records instead of growing without limit, so tracing can stay on
in long-running fleets.  ``chrome_trace()`` exports the standard Chrome
trace-event JSON (load it in https://ui.perfetto.dev — one track per
device plus the queue track); ``timeline()`` renders one request's
journey as plain text for tests and the CLI.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError

#: Default span capacity: ~8 spans/request leaves room for a 25k-request
#: replay before the collector starts dropping.
DEFAULT_TRACE_CAPACITY = 200_000

SPAN_KINDS = (
    "admitted",
    "queued",
    "backoff",
    "dispatch_overhead",
    "execute",
    "retry",
    "completed",
    "shed",
    "failed",
)

#: Exactly one of these is recorded per offered request.
TERMINAL_KINDS = frozenset({"completed", "shed", "failed"})

#: Device-track kinds whose summed durations must equal the device's
#: ``busy_ms`` — the accounting invariant the soak harness pins down.
DEVICE_BUSY_KINDS = frozenset({"dispatch_overhead", "execute", "retry"})


@dataclass(frozen=True)
class Span:
    """One typed interval (or instant) on the simulated timeline.

    ``request_id`` is ``None`` only for batch-level device spans
    (``dispatch_overhead``), which serve the whole batch.  Instants have
    ``end_ms == start_ms``.
    """

    kind: str
    start_ms: float
    end_ms: float
    request_id: int | None = None
    device_id: int | None = None       # None = queue track
    attempt: int = 0
    detail: str | None = None
    #: Owning fleet (e.g. ``"fleet-0"``) when the collector belongs to a
    #: cluster; stamped by the collector's namespace so multiple device
    #: pools in one process keep distinguishable tracks.
    fleet: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in SPAN_KINDS:
            raise ConfigurationError(
                f"unknown span kind {self.kind!r}; known: {SPAN_KINDS}"
            )

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_KINDS


class TraceCollector:
    """Bounded, thread-safe store of spans, indexed by request id.

    ``namespace`` names the fleet this collector traces (e.g.
    ``"fleet-0"``).  Every recorded span is stamped with it, and the
    Chrome export prefixes track names (``fleet-0/device.2``) so two
    pools exporting into one merged trace never collide.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        namespace: str | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("trace capacity must be positive")
        self.capacity = capacity
        self.namespace = namespace
        self._spans: list[Span] = []  # guarded_by: _lock
        self._dropped = 0  # guarded_by: _lock
        self._lock = threading.Lock()

    def record(self, span: Span) -> bool:
        """Store one span; ``False`` when the bounded buffer dropped it."""
        if self.namespace is not None and span.fleet is None:
            span = replace(span, fleet=self.namespace)
        with self._lock:
            if len(self._spans) >= self.capacity:
                self._dropped += 1
                return False
            self._spans.append(span)
            return True

    @property
    def dropped(self) -> int:
        """Spans discarded because the collector was full."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self) -> tuple[Span, ...]:
        """Every recorded span, in recording order."""
        with self._lock:
            return tuple(self._spans)

    def request_ids(self) -> tuple[int, ...]:
        """Distinct request ids with at least one span, ascending."""
        seen = {
            span.request_id
            for span in self.spans()
            if span.request_id is not None
        }
        return tuple(sorted(seen))

    def request_spans(self, request_id: int) -> tuple[Span, ...]:
        """One request's spans, ordered by (start, end) on the timeline."""
        mine = [s for s in self.spans() if s.request_id == request_id]
        return tuple(sorted(mine, key=lambda s: (s.start_ms, s.end_ms)))

    def device_spans(self, device_id: int) -> tuple[Span, ...]:
        """One device track's spans, ordered by (start, end)."""
        mine = [s for s in self.spans() if s.device_id == device_id]
        return tuple(sorted(mine, key=lambda s: (s.start_ms, s.end_ms)))

    # -- rendering -------------------------------------------------------

    def timeline(self, request_id: int) -> str:
        """Plain-text per-request journey, one span per line."""
        spans = self.request_spans(request_id)
        if not spans:
            return f"request {request_id}: no spans recorded"
        terminal = next(
            (s.kind for s in spans if s.terminal), "in-flight"
        )
        lines = [
            f"request {request_id} ({len(spans)} spans, "
            f"terminal={terminal})"
        ]
        for span in spans:
            track = (
                "queue" if span.device_id is None
                else f"device.{span.device_id}"
            )
            where = f"{track:10s} attempt {span.attempt}"
            if span.detail:
                where += f"  [{span.detail}]"
            lines.append(
                f"  [{span.start_ms:10.3f} → {span.end_ms:10.3f}] "
                f"{span.kind:17s} {where}"
            )
        return "\n".join(lines)

    def _track_name(self, device_id: int | None) -> str:
        base = "queue" if device_id is None else f"device.{device_id}"
        if self.namespace is None:
            return base
        return f"{self.namespace}/{base}"

    def trace_events(self, pid: int = 0) -> list[dict[str, Any]]:
        """This collector's Chrome trace events, under process ``pid``.

        Track (thread) names carry the collector's namespace
        (``fleet-0/device.2``), so events from several collectors can be
        concatenated into one trace without colliding — each collector
        gets its own pid (see :func:`merged_chrome_trace`).
        """
        spans = sorted(
            self.spans(), key=lambda s: (s.start_ms, s.end_ms)
        )
        tids = {None: 0}
        for device_id in sorted(
            {s.device_id for s in spans if s.device_id is not None}
        ):
            tids[device_id] = device_id + 1
        process = (
            "repro.serve" if self.namespace is None
            else f"repro.serve/{self.namespace}"
        )
        events: list[dict[str, Any]] = [
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": process}},
        ]
        for device_id, tid in tids.items():
            events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                 "args": {"name": self._track_name(device_id)}}
            )
        for span in spans:
            args: dict[str, Any] = {"attempt": span.attempt}
            if span.request_id is not None:
                args["request_id"] = span.request_id
            if span.detail:
                args["detail"] = span.detail
            if span.terminal:
                args["terminal"] = True
            if span.fleet is not None:
                args["fleet"] = span.fleet
            event: dict[str, Any] = {
                "pid": pid,
                "tid": tids[span.device_id],
                "cat": "serve",
                "name": span.kind,
                "ts": round(span.start_ms * 1_000.0, 3),
                "args": args,
            }
            if span.end_ms > span.start_ms:
                event["ph"] = "X"
                event["dur"] = round(span.duration_ms * 1_000.0, 3)
            else:
                event["ph"] = "i"
                event["s"] = "t"
            events.append(event)
        return events

    def chrome_trace(
        self, labels: dict[str, str] | None = None
    ) -> dict[str, Any]:
        """The trace in Chrome trace-event JSON (Perfetto-loadable).

        One process (`repro.serve`), one track per device plus a
        ``queue`` track (tid 0).  Intervals are complete (``"X"``)
        events in microseconds; instants are thread-scoped ``"i"``
        events.  Overlapping queue-track intervals (many requests queued
        at once) render stacked, which is the intended reading.
        """
        trace: dict[str, Any] = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
        }
        if labels:
            trace["metadata"] = dict(labels)
        return trace

    def write_chrome_trace(
        self, path, labels: dict[str, str] | None = None
    ) -> None:
        """Serialize :meth:`chrome_trace` to ``path`` as JSON."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(labels), handle, indent=1)


def merged_chrome_trace(
    collectors, labels: dict[str, str] | None = None
) -> dict[str, Any]:
    """One Chrome trace over several collectors (e.g. a cluster's fleets).

    Each collector becomes its own process (pid = position in
    ``collectors``), so ``fleet-0/device.2`` and ``fleet-1/device.2``
    stay separate tracks in Perfetto even though both pools number
    their devices from zero.
    """
    events: list[dict[str, Any]] = []
    for pid, collector in enumerate(collectors):
        events.extend(collector.trace_events(pid=pid))
    trace: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if labels:
        trace["metadata"] = dict(labels)
    return trace


# -- invariants ----------------------------------------------------------

def verify_trace_invariants(
    report, *, tolerance_ms: float = 1e-6
) -> list[str]:
    """Check the runtime's accounting invariants against a replay trace.

    Takes a :class:`~repro.serve.runtime.ServeReport` whose ``trace``
    field holds the run's :class:`TraceCollector` and returns a list of
    human-readable violations (empty = all invariants hold):

    1. conservation: ``completed + rejected + failed == offered``;
    2. every offered request has **exactly one** terminal span, and the
       traced request ids match the recorded outcomes;
    3. per-device spans are non-overlapping and monotone (each device's
       clock only moves forward);
    4. no span runs backwards, and no queue wait is negative (every
       ``queued`` span and every outcome ``queue_ms`` is >= 0);
    5. per device, ``busy_ms`` equals the summed durations of its
       ``dispatch_overhead`` + ``execute`` + ``retry`` spans, and no
       device span ends past the makespan;
    6. utilization is in [0, 1].

    The soak harness runs this after every replay; each check fails on
    the pre-fix runtime bugs catalogued in ISSUE 4.
    """
    violations: list[str] = []
    if not report.conserved:
        violations.append(
            f"conservation violated: {report.completed} + "
            f"{report.rejected} + {report.failed} != {report.offered}"
        )
    tracer = report.trace
    if tracer is None:
        violations.append("report carries no trace (tracing disabled?)")
        return violations
    if tracer.dropped:
        violations.append(
            f"collector dropped {tracer.dropped} spans (capacity "
            f"{tracer.capacity}); invariants are not checkable"
        )
        return violations

    spans = tracer.spans()

    # 2. exactly one terminal span per offered request.
    terminals: dict[int, list[Span]] = {}
    for span in spans:
        if span.terminal and span.request_id is not None:
            terminals.setdefault(span.request_id, []).append(span)
    for request_id, spans_for in sorted(terminals.items()):
        if len(spans_for) != 1:
            violations.append(
                f"request {request_id} has {len(spans_for)} terminal "
                f"spans: {[s.kind for s in spans_for]}"
            )
    outcome_ids = sorted(o.request_id for o in report.outcomes)
    if sorted(terminals) != outcome_ids:
        missing = set(outcome_ids) - set(terminals)
        extra = set(terminals) - set(outcome_ids)
        violations.append(
            f"terminal spans disagree with outcomes "
            f"(missing={sorted(missing)}, extra={sorted(extra)})"
        )

    # 4. no span runs backwards; queue waits non-negative.
    for span in spans:
        if span.end_ms < span.start_ms - tolerance_ms:
            violations.append(
                f"span runs backwards: {span.kind} request "
                f"{span.request_id} [{span.start_ms} → {span.end_ms}]"
            )
    for outcome in report.outcomes:
        if outcome.queue_ms < -tolerance_ms:
            violations.append(
                f"request {outcome.request_id} has negative queue wait "
                f"{outcome.queue_ms}"
            )

    # 3 + 5. per-device monotonicity and busy-time accounting.
    device_ids = sorted(
        {s.device_id for s in spans if s.device_id is not None}
    )
    for device_id in device_ids:
        track = tracer.device_spans(device_id)
        for prev, cur in zip(track, track[1:]):
            if cur.start_ms < prev.end_ms - tolerance_ms:
                violations.append(
                    f"device {device_id} spans overlap: "
                    f"{prev.kind}@[{prev.start_ms}, {prev.end_ms}] then "
                    f"{cur.kind}@[{cur.start_ms}, {cur.end_ms}]"
                )
        busy_spans = sum(
            s.duration_ms for s in track if s.kind in DEVICE_BUSY_KINDS
        )
        recorded = report.device_busy_ms.get(f"device.{device_id}")
        if recorded is not None:
            slack = max(1.0, abs(recorded)) * 1e-9 + tolerance_ms
            if abs(recorded - busy_spans) > slack:
                violations.append(
                    f"device {device_id} busy_ms {recorded:.6f} != "
                    f"sum of busy spans {busy_spans:.6f}"
                )
        late = [
            s for s in track
            if s.end_ms > report.makespan_ms + tolerance_ms
        ]
        if late:
            violations.append(
                f"device {device_id} has {len(late)} spans past the "
                f"makespan {report.makespan_ms}"
            )

    # 6. utilization bounded.
    for name, value in report.device_utilization.items():
        if not 0.0 <= value <= 1.0 + 1e-12:
            violations.append(f"{name} utilization {value} outside [0, 1]")
    return violations
