"""Analysis-test fixtures.

The sanitizer soak test drives a real ServeRuntime, so it borrows the
serve suite's session-scoped artifact fixtures instead of training a
second model.
"""

from tests.serve.conftest import (  # noqa: F401
    serve_registry,
    small_artifact,
    small_trained,
)
