"""Hygiene lint fixtures: raw acquire, naked wait, blocking under
lock, and post-start ``__init__`` publication — one of each."""

import threading
import time


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cv = threading.Condition()
        self._ready = False
        self._thread = threading.Thread(target=self.run)
        self._thread.start()
        # Published after the thread is live: it can observe the
        # half-built object.  Expected: init-publish-after-start.
        self._late_config = {"batch": 4}

    def run(self) -> None:
        # Expected: acquire-without-with (exception-unsafe).
        self._lock.acquire()
        try:
            self._ready = True
        finally:
            self._lock.release()

    def wait_ready(self) -> None:
        with self._cv:
            if not self._ready:
                # Expected: wait-outside-loop (spurious wakeups).
                self._cv.wait()

    def flush(self) -> None:
        with self._lock:
            # Expected: blocking-call-under-lock.
            time.sleep(0.01)
