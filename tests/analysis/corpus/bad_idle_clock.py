"""PR 4 bug shape 3: idle-time mischarge via unguarded clock mutation.

The dispatch path advances the device clock outside the lock the
worker loop holds when reading it, so an idle jump and an overhead
charge interleave and busy time absorbs the idle gap.  Expected:
``unguarded-write``.
"""

import threading


class Device:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clock_ms = 0.0
        self._busy_ms = 0.0

    def begin_dispatch(self, overhead_ms: float) -> None:
        # Mutates the clock with no lock while execute() charges busy
        # time under it: the overhead lands inside the idle gap.
        self._clock_ms = self._clock_ms + overhead_ms

    def execute(self, duration_ms: float) -> float:
        with self._lock:
            self._clock_ms = self._clock_ms + duration_ms
            self._busy_ms = self._busy_ms + duration_ms
            return self._clock_ms
