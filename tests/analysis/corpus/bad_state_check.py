"""PR 4 bug shape 4: unlocked state-transition check (check-then-act).

The drain path tests the closed flag outside the condition's lock and
then flips it under the lock: two threads can both see "not closed"
and both run the one-shot transition.  Expected: ``check-then-act``.
"""

import threading


class Queue:
    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._closed = False
        self._drains = 0

    def close_once(self) -> None:
        if self._closed:            # stale read: the check...
            return
        with self._cv:
            self._closed = True     # ...races the act
            self._drains = self._drains + 1
            self._cv.notify_all()

    def is_closed(self) -> bool:
        with self._cv:
            return self._closed
