"""PR 4 bug shape 1: unlocked tally increment (lost updates).

``submit()`` bumps the offered counter outside the lock every other
method uses for it — the exact ``self._offered += 1`` race the soak
harness caught dynamically.  Expected: ``unguarded-rmw``.
"""

import threading


class Runtime:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._offered = 0

    def submit(self) -> None:
        self._offered += 1          # racy read-modify-write

    def reset(self) -> None:
        with self._lock:
            self._offered = 0

    def report(self) -> int:
        with self._lock:
            return self._offered
