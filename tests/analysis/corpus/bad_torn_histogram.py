"""PR 4 bug shape 2: torn multi-field histogram read.

``summary()`` reads count/sum/max without the lock that ``observe()``
updates them under: a concurrent observe between the piecemeal reads
yields a snapshot whose fields come from different instants.
Expected: ``torn-read``.
"""

import threading


class Histogram:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._max = max(self._max, value)

    def summary(self) -> dict:
        return {
            "count": self._count,    # torn: three reads, no lock
            "mean": self._sum / max(self._count, 1),
            "max": self._max,
        }
