"""Clean counterpart of bad_torn_histogram: one-lock snapshot."""

import threading


class Histogram:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._max = max(self._max, value)

    def summary(self) -> dict:
        with self._lock:
            count = self._count
            total = self._sum
            maximum = self._max
        return {
            "count": count,
            "mean": total / max(count, 1),
            "max": maximum,
        }
