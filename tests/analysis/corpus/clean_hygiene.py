"""Clean counterpart of bad_hygiene: with-blocks, predicate loop,
blocking work outside the lock, fields published before the thread,
and one consistent lock (the condition) for the shared flag."""

import threading
import time


class Worker:
    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._ready = False
        self._late_config = {"batch": 4}
        self._thread = threading.Thread(target=self.run)
        self._thread.start()

    def run(self) -> None:
        with self._cv:
            self._ready = True
            self._cv.notify_all()

    def wait_ready(self) -> None:
        with self._cv:
            while not self._ready:
                self._cv.wait()

    def flush(self) -> None:
        time.sleep(0.01)
        with self._cv:
            self._ready = False
