"""Clean counterpart of bad_idle_clock: both mutations locked."""

import threading


class Device:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clock_ms = 0.0
        self._busy_ms = 0.0

    def begin_dispatch(self, overhead_ms: float) -> None:
        with self._lock:
            self._clock_ms = self._clock_ms + overhead_ms

    def execute(self, duration_ms: float) -> float:
        with self._lock:
            self._clock_ms = self._clock_ms + duration_ms
            self._busy_ms = self._busy_ms + duration_ms
            return self._clock_ms
