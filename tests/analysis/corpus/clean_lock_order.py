"""Clean counterpart of bad_lock_cycle: one global acquisition order."""

import threading


class Ledger:
    def __init__(self) -> None:
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self._a = 0
        self._b = 0

    def transfer_in(self, amount: int) -> None:
        with self._lock_a:
            self._a = self._a - amount
            with self._lock_b:
                self._b = self._b + amount

    def transfer_out(self, amount: int) -> None:
        with self._lock_a:
            self._a = self._a + amount
            with self._lock_b:
                self._b = self._b - amount
