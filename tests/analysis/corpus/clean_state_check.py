"""Clean counterpart of bad_state_check: test-and-set in one region."""

import threading


class Queue:
    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._closed = False
        self._drains = 0

    def close_once(self) -> None:
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._drains = self._drains + 1
            self._cv.notify_all()

    def is_closed(self) -> bool:
        with self._cv:
            return self._closed
