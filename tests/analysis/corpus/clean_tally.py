"""Clean counterpart of bad_tally_race: every touch under the lock."""

import threading


class Runtime:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._offered = 0

    def submit(self) -> None:
        with self._lock:
            self._offered += 1

    def report(self) -> int:
        with self._lock:
            return self._offered
