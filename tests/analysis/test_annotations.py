"""The annotation layer: decorator semantics, declared guards,
``# holds:`` resolution, and ``# lockfree_ok:`` waivers."""

import textwrap

from repro.analysis.annotations import GUARDED_BY_ATTR, guarded_by
from repro.analysis.concurrency import analyze_paths
from repro.analysis.concurrency.model import (
    UNGUARDED_READ,
    UNGUARDED_WRITE,
    UNHELD_GUARDED_CALL,
)
import pytest


def analyze_source(tmp_path, source: str):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return analyze_paths([path])


class TestDecorator:
    def test_tags_the_function_and_returns_it(self):
        @guarded_by("_lock")
        def helper():
            return 42

        assert helper() == 42
        assert getattr(helper, GUARDED_BY_ATTR) == "_lock"

    def test_rejects_non_string_locks(self):
        with pytest.raises(TypeError):
            guarded_by(None)
        with pytest.raises(TypeError):
            guarded_by("")

    def test_body_analyzed_as_if_lock_held(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading
            from repro.analysis.annotations import guarded_by

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._push(item)

                @guarded_by("_lock")
                def _push(self, item):
                    self._items.append(item)
        """)
        # The append inside _push holds the declared lock: no finding.
        assert report.active == [], [v.format() for v in report.active]

    def test_unheld_call_site_is_flagged(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading
            from repro.analysis.annotations import guarded_by

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add_unlocked(self, item):
                    self._push(item)

                def add_locked(self, item):
                    with self._lock:
                        self._push(item)

                @guarded_by("_lock")
                def _push(self, item):
                    self._items.append(item)
        """)
        unheld = report.by_rule()[UNHELD_GUARDED_CALL]
        assert len(unheld) == 1
        assert "add_unlocked" in unheld[0].function


class TestDeclaredGuards:
    def test_declaration_flags_every_unlocked_access(self, tmp_path):
        # Inference alone would tolerate this 50/50 field; the
        # declaration makes the unlocked write a finding.
        report = analyze_source(tmp_path, """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._mode = "idle"  # guarded_by: _lock

                def set_mode(self, mode):
                    self._mode = mode

                def mode_locked(self):
                    with self._lock:
                        return self._mode
        """)
        writes = report.by_rule()[UNGUARDED_WRITE]
        assert [v.subject for v in writes] == ["_mode"]
        guard = report.guards[("fixture.Box", "_mode")]
        assert guard.declared

    def test_module_level_declaration(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            _LOCK = threading.Lock()
            _TABLE = {}  # guarded_by: _LOCK

            def put(key, value):
                with _LOCK:
                    _TABLE[key] = value

            def peek(key):
                return _TABLE.get(key)
        """)
        reads = report.by_rule()[UNGUARDED_READ]
        assert [v.subject for v in reads] == ["_TABLE"]
        assert "peek" in reads[0].function


class TestHoldsAndWaivers:
    def test_holds_comment_names_the_synthetic_lock(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            _REGISTRY = {}

            def _lock_for(key):
                return _REGISTRY[key]

            def update(key, table):
                with _lock_for(key):  # holds: _key_locks
                    table[key] = 1
        """)
        assert "fixture._key_locks" in report.graph.nodes

    def test_lockfree_ok_waives_the_access(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0  # guarded_by: _lock

                def record(self):
                    with self._lock:
                        self._hits += 1

                def hits_fast(self):
                    return self._hits  # lockfree_ok: stats-only racy read

                def hits_exact(self):
                    with self._lock:
                        return self._hits
        """)
        assert report.active == [], [v.format() for v in report.active]
        [waived] = report.waived
        assert waived.subject == "_hits"
        assert "stats-only" in waived.waived
