"""CFG construction, structural validation, and loop detection."""

import pytest

from repro.analysis import build_cfg
from repro.errors import VerificationError
from repro.mcu.isa import Assembler, Instr, Op, Program, Reg


def _assemble(body) -> "Program":
    asm = Assembler()
    body(asm)
    return asm.assemble()


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        def body(asm):
            asm.movi(Reg.R0, 1)
            asm.addi(Reg.R0, Reg.R0, 2)
            asm.halt()

        cfg = build_cfg(_assemble(body))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].start == 0
        assert cfg.blocks[0].end == 2
        assert cfg.blocks[0].successors == ()

    def test_branch_splits_blocks(self):
        def body(asm):
            asm.movi(Reg.R0, 3)          # 0
            asm.label("loop")
            asm.subsi(Reg.R0, Reg.R0, 1)  # 1
            asm.bgt("loop")               # 2
            asm.halt()                    # 3

        cfg = build_cfg(_assemble(body))
        assert len(cfg.blocks) == 3
        loop_block = cfg.block_containing(1)
        assert loop_block.start == 1 and loop_block.end == 2
        # Self-loop plus fallthrough to HALT.
        assert set(loop_block.successors) == {
            loop_block.id, cfg.block_of[3]
        }

    def test_predecessors_mirror_successors(self):
        def body(asm):
            asm.movi(Reg.R0, 2)
            asm.label("top")
            asm.subsi(Reg.R0, Reg.R0, 1)
            asm.bgt("top")
            asm.halt()

        cfg = build_cfg(_assemble(body))
        for block in cfg.blocks:
            for succ in block.successors:
                assert block.id in cfg.blocks[succ].predecessors


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(VerificationError, match="empty"):
            build_cfg(Program(instructions=(), labels={}, name="empty"))

    def test_invalid_branch_target_names_instruction(self):
        program = Program(
            instructions=(
                Instr(Op.MOVI, (Reg.R0, 1)),
                Instr(Op.B, (99,)),
                Instr(Op.HALT, ()),
            ),
            labels={},
            name="bad-branch",
        )
        with pytest.raises(VerificationError, match="instruction 1") as exc:
            build_cfg(program)
        assert exc.value.instruction_index == 1
        assert exc.value.pass_name == "cfg"

    def test_fallthrough_past_end_rejected(self):
        program = Program(
            instructions=(Instr(Op.MOVI, (Reg.R0, 1)),),
            labels={},
            name="no-halt",
        )
        with pytest.raises(VerificationError, match="falls through"):
            build_cfg(program)

    def test_unreachable_code_is_recorded_not_raised(self):
        program = Program(
            instructions=(
                Instr(Op.B, (3,)),
                Instr(Op.MOVI, (Reg.R0, 1)),   # dead
                Instr(Op.MOVI, (Reg.R1, 2)),   # dead
                Instr(Op.HALT, ()),
            ),
            labels={},
            name="dead-code",
        )
        cfg = build_cfg(program)
        assert cfg.unreachable_instructions == (1, 2)


class TestLoops:
    def test_self_loop_body_is_just_the_latch_block(self):
        def body(asm):
            asm.movi(Reg.R0, 4)           # 0
            asm.label("loop")
            asm.subsi(Reg.R0, Reg.R0, 1)  # 1
            asm.bgt("loop")               # 2
            asm.halt()                    # 3

        cfg = build_cfg(_assemble(body))
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.body == frozenset({loop.header})
        assert loop.branch_index == 2

    def test_nested_loops_detected(self):
        def body(asm):
            asm.movi(Reg.R0, 3)
            asm.label("outer")
            asm.movi(Reg.R1, 5)
            asm.label("inner")
            asm.subsi(Reg.R1, Reg.R1, 1)
            asm.bgt("inner")
            asm.subsi(Reg.R0, Reg.R0, 1)
            asm.bgt("outer")
            asm.halt()

        cfg = build_cfg(_assemble(body))
        assert len(cfg.loops) == 2
        bodies = sorted(len(loop.body) for loop in cfg.loops)
        # Inner loop is one block; the outer body strictly contains it.
        assert bodies[0] < bodies[1]
        inner = min(cfg.loops, key=lambda lp: len(lp.body))
        outer = max(cfg.loops, key=lambda lp: len(lp.body))
        assert inner.header in outer.body
