"""The analyzer against the regression corpus: every PR 4 bug shape
is flagged, every clean counterpart is silent.

The corpus under ``tests/analysis/corpus/`` pairs each ``bad_*.py``
fixture (a distilled real bug) with a ``clean_*.py`` rewrite; the
tests here are the contract that the analyzer separates them.
"""

from pathlib import Path

import pytest

from repro.analysis.concurrency import analyze_paths
from repro.analysis.concurrency.model import (
    ACQUIRE_WITHOUT_WITH,
    BLOCKING_CALL_UNDER_LOCK,
    CHECK_THEN_ACT,
    INIT_PUBLISH_AFTER_START,
    LOCK_ORDER_CYCLE,
    TORN_READ,
    UNGUARDED_RMW,
    UNGUARDED_WRITE,
    WAIT_OUTSIDE_LOOP,
)

CORPUS = Path(__file__).parent / "corpus"


def rules_for(name: str) -> dict:
    """Analyze one corpus file -> {rule: [violations]}."""
    report = analyze_paths([CORPUS / name])
    assert report.modules, f"{name} produced no module model"
    return report.by_rule()


class TestPR4BugShapes:
    """The four dynamically-caught PR 4 bugs, now caught statically."""

    def test_unlocked_tally_increment(self):
        rules = rules_for("bad_tally_race.py")
        [violation] = rules[UNGUARDED_RMW]
        assert violation.subject == "_offered"
        assert "submit" in violation.function

    def test_torn_multi_field_histogram_read(self):
        rules = rules_for("bad_torn_histogram.py")
        [violation] = rules[TORN_READ]
        fields = set(violation.subject.split(","))
        assert fields == {"_count", "_sum", "_max"}
        assert "summary" in violation.function

    def test_idle_time_mischarge_unguarded_clock(self):
        rules = rules_for("bad_idle_clock.py")
        subjects = {v.subject for v in rules[UNGUARDED_WRITE]}
        assert "_clock_ms" in subjects
        functions = {
            v.function for v in rules[UNGUARDED_WRITE]
            if v.subject == "_clock_ms"
        }
        assert any("begin_dispatch" in fn for fn in functions)

    def test_unlocked_state_transition_check(self):
        rules = rules_for("bad_state_check.py")
        [violation] = rules[CHECK_THEN_ACT]
        assert violation.subject == "_closed"
        assert "close_once" in violation.function


class TestDeadlockShapes:
    def test_opposite_order_nesting_is_a_cycle(self):
        report = analyze_paths([CORPUS / "bad_lock_cycle.py"])
        cycles = report.graph.cycles()
        assert len(cycles) == 1
        [violation] = report.by_rule()[LOCK_ORDER_CYCLE]
        assert "_lock_a" in violation.subject
        assert "_lock_b" in violation.subject
        # The witness names both acquisition sites.
        assert "transfer_in" in violation.message or \
            "transfer_out" in violation.message

    def test_consistent_order_is_acyclic(self):
        report = analyze_paths([CORPUS / "clean_lock_order.py"])
        assert report.graph.cycles() == []
        assert LOCK_ORDER_CYCLE not in report.by_rule()
        # The nesting still produces the A -> B edge.
        assert len(report.graph.edges) == 1


class TestHygieneShapes:
    def test_bad_hygiene_flags_all_four(self):
        rules = rules_for("bad_hygiene.py")
        assert ACQUIRE_WITHOUT_WITH in rules
        assert WAIT_OUTSIDE_LOOP in rules
        assert BLOCKING_CALL_UNDER_LOCK in rules
        [late] = rules[INIT_PUBLISH_AFTER_START]
        assert late.subject == "_late_config"

    def test_clean_hygiene_is_silent(self):
        report = analyze_paths([CORPUS / "clean_hygiene.py"])
        assert report.active == [], "\n".join(
            v.format() for v in report.active
        )


@pytest.mark.parametrize("name", [
    "clean_tally.py",
    "clean_histogram.py",
    "clean_idle_clock.py",
    "clean_state_check.py",
    "clean_lock_order.py",
    "clean_hygiene.py",
])
def test_clean_counterparts_not_flagged(name):
    report = analyze_paths([CORPUS / name])
    assert report.active == [], "\n".join(
        v.format() for v in report.active
    )


def test_corpus_pairs_are_complete():
    """Every bad fixture has a clean counterpart checked above."""
    bad = {p.name for p in CORPUS.glob("bad_*.py")}
    assert bad == {
        "bad_tally_race.py", "bad_torn_histogram.py",
        "bad_idle_clock.py", "bad_state_check.py",
        "bad_lock_cycle.py", "bad_hygiene.py",
    }
