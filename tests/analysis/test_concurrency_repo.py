"""The analyzer applied to this repository's own source.

Pins the PR 6 acceptance criteria: the serve lock graph is acyclic,
the committed baseline covers every remaining finding, and each true
positive fixed in this PR stays fixed (pre-fix, each regression test
here fails on the corresponding unguarded property read).
"""

from pathlib import Path

import repro
import repro.serve
from repro.analysis.concurrency import (
    analyze_paths,
    load_baseline,
    split_against_baseline,
)
from repro.analysis.concurrency.model import (
    CHECK_THEN_ACT,
    LOCK_ORDER_CYCLE,
    TORN_READ,
    UNGUARDED_READ,
    UNGUARDED_RMW,
    UNGUARDED_WRITE,
)

SRC = Path(repro.__file__).parent
REPO_ROOT = Path(__file__).resolve().parents[2]

DATA_RACE_RULES = {
    UNGUARDED_READ, UNGUARDED_WRITE, UNGUARDED_RMW,
    TORN_READ, CHECK_THEN_ACT,
}


class TestServePackage:
    def setup_method(self):
        self.report = analyze_paths([SRC / "serve"])

    def test_no_data_race_findings(self):
        races = [
            v for v in self.report.active if v.rule in DATA_RACE_RULES
        ]
        assert races == [], "\n".join(v.format() for v in races)

    def test_lock_graph_is_acyclic(self):
        assert self.report.graph.cycles() == []
        assert LOCK_ORDER_CYCLE not in self.report.by_rule()

    def test_serve_locks_are_leaf_level(self):
        """No serve lock is ever acquired while holding another —
        the property the strict runtime sanitizer asserts dynamically
        during the soaks."""
        assert dict(self.report.graph.edges) == {}

    def test_every_serve_lock_is_modeled(self):
        expected = {
            "repro.serve.metrics.Counter._lock",
            "repro.serve.metrics.Gauge._lock",
            "repro.serve.metrics.Histogram._lock",
            "repro.serve.metrics.MetricsRegistry._lock",
            "repro.serve.registry.ModelRegistry._lock",
            "repro.serve.runtime.ServeRuntime._arrival_lock",
            "repro.serve.runtime.ServeRuntime._outcome_lock",
            "repro.serve.scheduler.BoundedRequestQueue._cv",
            "repro.serve.tracing.TraceCollector._lock",
        }
        assert expected <= self.report.graph.nodes


class TestFixedTruePositives:
    """Each fix from this PR, pinned by the rule that found it.

    Pre-fix, every one of these properties read its field without the
    metric's/registry's lock and the analyzer reported unguarded-read;
    re-introducing any of those reads fails the matching test.
    """

    def _unguarded_reads(self, module: str) -> set:
        report = analyze_paths([SRC / "serve" / module])
        return {
            (v.function, v.subject)
            for v in report.active if v.rule == UNGUARDED_READ
        }

    def test_counter_value_reads_under_lock(self):
        assert not any(
            "Counter" in fn for fn, _ in self._unguarded_reads("metrics.py")
        )

    def test_gauge_value_reads_under_lock(self):
        assert not any(
            "Gauge" in fn for fn, _ in self._unguarded_reads("metrics.py")
        )

    def test_histogram_count_reads_under_lock(self):
        assert not any(
            "Histogram" in fn
            for fn, _ in self._unguarded_reads("metrics.py")
        )

    def test_registry_len_reads_under_lock(self):
        assert self._unguarded_reads("registry.py") == set()


class TestExperimentsLocks:
    """Satellite: cache/runner module locks are declared and honoured."""

    def setup_method(self):
        self.report = analyze_paths([SRC / "experiments"])

    def test_memo_map_guard_is_declared(self):
        guard = self.report.guards[("repro.experiments.cache", "_MEMO")]
        assert guard.declared
        assert guard.lock == "repro.experiments.cache._MEMO_LOCK"

    def test_memo_never_published_outside_memo_lock(self):
        """Every non-init access of _MEMO and _KEY_LOCKS holds
        _MEMO_LOCK — the memo map cannot be published outside it."""
        for field in ("_MEMO", "_KEY_LOCKS"):
            guard = self.report.guards[
                ("repro.experiments.cache", field)
            ]
            assert guard.guarded_accesses == guard.accesses, field
        leaks = [
            v for v in self.report.active
            if v.rule in DATA_RACE_RULES
            and v.subject in ("_MEMO", "_KEY_LOCKS")
        ]
        assert leaks == []

    def test_runs_guard_is_declared(self):
        guard = self.report.guards[("repro.experiments.runner", "_RUNS")]
        assert guard.declared
        assert guard.lock == "repro.experiments.runner._RUNS_LOCK"

    def test_key_lock_factory_orders_before_memo_lock(self):
        """The one real nesting in the repo: per-key lock, then the
        registry lock — present, and in only that direction."""
        edges = set(self.report.graph.edges)
        assert (
            "repro.experiments.cache._key_lock()",
            "repro.experiments.cache._MEMO_LOCK",
        ) in edges
        assert (
            "repro.experiments.cache._MEMO_LOCK",
            "repro.experiments.cache._key_lock()",
        ) not in edges


class TestRepoBaseline:
    def test_repo_is_clean_against_committed_baseline(self):
        """`repro lint-concurrency` exits 0: no finding outside the
        checked-in baseline, and no stale baseline entries."""
        report = analyze_paths([SRC])
        baseline = load_baseline(REPO_ROOT / "concurrency_baseline.json")
        new, _known, stale = split_against_baseline(
            report.active, baseline
        )
        assert new == [], "\n".join(
            f"{v.format()}  [{v.fingerprint}]" for v in new
        )
        assert stale == []

    def test_baseline_reasons_are_meaningful(self):
        baseline = load_baseline(REPO_ROOT / "concurrency_baseline.json")
        assert baseline, "baseline should carry the known exceptions"
        for fingerprint, reason in baseline.items():
            assert len(reason) > 20, (
                f"{fingerprint}: baseline entries need a real "
                f"justification, not a placeholder"
            )

    def test_whole_repo_graph_is_acyclic(self):
        report = analyze_paths([SRC])
        assert report.graph.cycles() == []
