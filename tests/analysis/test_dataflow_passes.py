"""Taint (§4.1 discipline) and definite-initialization passes."""

import pytest

from repro.analysis import (
    TAINTED_STORE_ADDRESS,
    check_initialized_reads,
    verify_static_control_flow,
)
from repro.errors import VerificationError
from repro.mcu.isa import Assembler, Reg

RAM = 0x2000_0000


def _assemble(body):
    asm = Assembler()
    body(asm)
    return asm.assemble()


class TestTaintedStoreAddresses:
    def test_data_derived_store_base_is_flagged(self):
        # Classic table-scatter: load a data byte, use it as an index.
        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.ldrsb(Reg.R1, Reg.R0, 0)        # tainted value
            asm.movi(Reg.R2, RAM + 64)
            asm.add(Reg.R2, Reg.R2, Reg.R1)     # tainted address
            asm.movi(Reg.R3, 7)
            asm.strb(Reg.R3, Reg.R2, 0)         # store through it
            asm.halt()

        result = verify_static_control_flow(_assemble(body), RAM, 64)
        assert not result.store_addresses_are_input_independent
        assert not result.ok
        assert result.control_flow_is_input_independent  # flags untouched
        assert [v.kind for v in result.violations] == [
            TAINTED_STORE_ADDRESS
        ]
        assert result.violations[0].index == 5

    def test_data_derived_index_register_is_flagged(self):
        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.ldrsb(Reg.R1, Reg.R0, 0)        # tainted value
            asm.movi(Reg.R2, RAM + 64)
            asm.movi(Reg.R3, 7)
            asm.strb(Reg.R3, Reg.R2, Reg.R1)    # tainted index register
            asm.halt()

        result = verify_static_control_flow(_assemble(body), RAM, 64)
        assert not result.store_addresses_are_input_independent
        assert result.violations[0].index == 4
        with pytest.raises(VerificationError, match="store address"):
            result.require_clean()

    def test_storing_tainted_value_to_constant_address_is_fine(self):
        # Writing activations is the whole point: tainted *value*,
        # untainted *address*.
        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.ldrsb(Reg.R1, Reg.R0, 0)
            asm.movi(Reg.R2, RAM + 64)
            asm.strb(Reg.R1, Reg.R2, 0)
            asm.halt()

        result = verify_static_control_flow(_assemble(body), RAM, 64)
        assert result.ok
        assert result.store_addresses_are_input_independent
        assert result.tainted_store_sites == 1

    def test_pointer_bump_store_is_fine(self):
        # Walking a pointer with ADDI keeps the address input-independent.
        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.movi(Reg.R2, RAM + 64)
            asm.movi(Reg.R3, 2)
            asm.label("loop")
            asm.ldrsb(Reg.R1, Reg.R0, 0)
            asm.addi(Reg.R0, Reg.R0, 1)
            asm.strb(Reg.R1, Reg.R2, 0)
            asm.addi(Reg.R2, Reg.R2, 1)
            asm.subsi(Reg.R3, Reg.R3, 1)
            asm.bgt("loop")
            asm.halt()

        result = verify_static_control_flow(_assemble(body), RAM, 64)
        assert result.ok


class TestInitializedReads:
    def test_read_before_any_write_is_flagged(self):
        def body(asm):
            asm.addi(Reg.R0, Reg.R1, 1)   # reads R1, never written
            asm.halt()

        result = check_initialized_reads(_assemble(body))
        assert not result.ok
        assert result.violations[0].index == 0
        assert result.violations[0].register == Reg.R1
        with pytest.raises(VerificationError, match="uninitialized"):
            result.require_clean()

    def test_write_then_read_is_clean(self):
        def body(asm):
            asm.movi(Reg.R1, 5)
            asm.addi(Reg.R0, Reg.R1, 1)
            asm.halt()

        assert check_initialized_reads(_assemble(body)).ok

    def test_one_sided_init_in_diamond_is_flagged(self):
        # R2 is written only on the taken path; the join must intersect.
        def body(asm):
            asm.movi(Reg.R0, 1)
            asm.cmpi(Reg.R0, 0)
            asm.beq("skip")
            asm.movi(Reg.R2, 7)
            asm.label("skip")
            asm.addi(Reg.R3, Reg.R2, 1)   # R2 maybe-uninitialized
            asm.halt()

        result = check_initialized_reads(_assemble(body))
        assert [v.register for v in result.violations] == [Reg.R2]

    def test_both_sided_init_in_diamond_is_clean(self):
        def body(asm):
            asm.movi(Reg.R0, 1)
            asm.cmpi(Reg.R0, 0)
            asm.beq("other")
            asm.movi(Reg.R2, 7)
            asm.b("join")
            asm.label("other")
            asm.movi(Reg.R2, 9)
            asm.label("join")
            asm.addi(Reg.R3, Reg.R2, 1)
            asm.halt()

        assert check_initialized_reads(_assemble(body)).ok

    def test_entry_seed_suppresses_violation(self):
        def body(asm):
            asm.addi(Reg.R0, Reg.R1, 1)
            asm.halt()

        result = check_initialized_reads(
            _assemble(body), initialized=frozenset({Reg.R1})
        )
        assert result.ok

    def test_store_reads_value_base_and_index(self):
        def body(asm):
            asm.strb(Reg.R0, Reg.R1, Reg.R2)   # all three uninitialized
            asm.halt()

        result = check_initialized_reads(_assemble(body))
        assert {v.register for v in result.violations} == {
            Reg.R0, Reg.R1, Reg.R2
        }
