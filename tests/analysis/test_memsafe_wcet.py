"""Memory safety and static WCET over abstract execution."""

import numpy as np
import pytest

from repro.analysis import (
    abstract_execute,
    build_cfg,
    check_memory_safety,
    infer_wcet,
    verify_kernel_image,
)
from repro.errors import VerificationError
from repro.kernels.codegen_cnn import ConvKernelSpec, generate_conv
from repro.kernels.codegen_dense import generate_dense
from repro.kernels.codegen_sparse import SPARSE_FORMATS, generate_sparse
from repro.kernels.codegen_unrolled import generate_dense_unrolled
from repro.kernels.spec import make_dense_spec, make_neuroc_spec
from repro.mcu.board import BOARD_PROFILES
from repro.mcu.isa import Assembler, Reg
from repro.mcu.memory import MemoryMap

RAM = 0x2000_0000
FLASH = 0x0800_0000


def _assemble(body):
    asm = Assembler()
    body(asm)
    return asm.assemble()


@pytest.fixture()
def ternary_spec(rng):
    adjacency = rng.integers(-1, 2, (16, 8)).astype(np.int8)
    adjacency[rng.random(adjacency.shape) < 0.6] = 0
    bias = rng.integers(-5, 5, 8).astype(np.int32)
    return make_neuroc_spec(
        adjacency, bias, mult=np.full(8, 3, np.int32), shift=6
    )


class TestMemorySafety:
    def test_store_outside_every_region_is_violation(self):
        def body(asm):
            asm.movi(Reg.R0, RAM - 64)     # below RAM, unmapped
            asm.movi(Reg.R1, 1)
            asm.strb(Reg.R1, Reg.R0, 0)
            asm.halt()

        trace = abstract_execute(_assemble(body), MemoryMap.stm32())
        result = check_memory_safety(trace)
        assert not result.ok
        assert result.violations[0].index == 2
        assert "outside every mapped region" in str(result.violations[0])
        with pytest.raises(VerificationError, match="memory-safety") as exc:
            result.require_clean()
        assert exc.value.instruction_index == 2

    def test_store_to_flash_is_violation(self):
        def body(asm):
            asm.movi(Reg.R0, FLASH)
            asm.movi(Reg.R1, 1)
            asm.str_(Reg.R1, Reg.R0, 0)
            asm.halt()

        trace = abstract_execute(_assemble(body), MemoryMap.stm32())
        result = check_memory_safety(trace)
        assert not result.ok
        assert "read-only" in str(result.violations[0])

    def test_load_past_end_of_ram_is_violation(self):
        ram_kb = 16

        def body(asm):
            asm.movi(Reg.R0, RAM + ram_kb * 1024 - 2)
            asm.ldr(Reg.R1, Reg.R0, 0)    # 4-byte read, 2 bytes left
            asm.halt()

        trace = abstract_execute(_assemble(body), MemoryMap.stm32())
        result = check_memory_safety(trace)
        assert not result.ok
        assert result.violations[0].index == 1

    def test_in_bounds_accesses_report_ranges(self):
        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.movi(Reg.R2, 4)
            asm.label("loop")
            asm.ldrsb(Reg.R1, Reg.R0, 0)
            asm.addi(Reg.R0, Reg.R0, 1)
            asm.subsi(Reg.R2, Reg.R2, 1)
            asm.bgt("loop")
            asm.halt()

        trace = abstract_execute(_assemble(body), MemoryMap.stm32())
        result = check_memory_safety(trace)
        assert result.ok
        (access,) = result.accesses
        assert (access.lo, access.hi) == (RAM, RAM + 3)
        assert access.count == 4
        assert access.region == "ram"
        assert result.loads_checked == 4

    def test_verification_does_not_touch_traffic_counters(self):
        memory = MemoryMap.stm32()

        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.ldrsb(Reg.R1, Reg.R0, 0)
            asm.strb(Reg.R1, Reg.R0, 4)
            asm.halt()

        abstract_execute(_assemble(body), memory)
        for region in memory.regions:
            assert region.loads == 0
            assert region.stores == 0


class TestWCETBounds:
    def test_data_dependent_branch_defeats_the_bound(self):
        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.ldrsb(Reg.R1, Reg.R0, 0)    # unknown data ...
            asm.cmpi(Reg.R1, 0)             # ... drives the flags
            asm.beq("skip")
            asm.movi(Reg.R2, 1)
            asm.label("skip")
            asm.halt()

        program = _assemble(body)
        trace = abstract_execute(program, MemoryMap.stm32())
        wcet = infer_wcet(build_cfg(program), trace)
        assert not wcet.ok
        assert "data-dependent" in wcet.failure
        with pytest.raises(VerificationError, match="no static cycle"):
            wcet.require_bound()

    def test_countdown_loop_bound_is_exact(self):
        def body(asm):
            asm.movi(Reg.R0, 10)
            asm.label("loop")
            asm.subsi(Reg.R0, Reg.R0, 1)
            asm.bgt("loop")
            asm.halt()

        program = _assemble(body)
        trace = abstract_execute(program, MemoryMap.stm32())
        wcet = infer_wcet(build_cfg(program), trace)
        (loop,) = wcet.loops
        assert loop.idiom == "countdown"
        assert loop.counter == Reg.R0
        assert loop.trip_bound == 10
        # 1 (movi) + 10*(1 subsi) + 9*3 + 1 (taken/not-taken bgt) + 1 halt
        assert wcet.cycle_bound == 1 + 10 * 1 + 9 * 3 + 1 + 1

    def test_countup_loop_is_classified(self):
        def body(asm):
            asm.movi(Reg.R0, 0)       # counter
            asm.movi(Reg.R1, 6)       # limit
            asm.label("loop")
            asm.addi(Reg.R0, Reg.R0, 1)
            asm.cmp(Reg.R0, Reg.R1)
            asm.blt("loop")
            asm.halt()

        program = _assemble(body)
        trace = abstract_execute(program, MemoryMap.stm32())
        wcet = infer_wcet(build_cfg(program), trace)
        (loop,) = wcet.loops
        assert loop.idiom == "countup"
        assert loop.counter == Reg.R0
        assert loop.trip_bound == 6


class TestKernelTightness:
    """Acceptance: measured <= bound <= 1.05 * measured, every backend."""

    def _assert_tight(self, image, x):
        report = verify_kernel_image(image)
        assert report.ok, report.format()
        bound = report.cycle_bound
        image.write_input(x)
        measured = image.run().cycles
        assert measured <= bound <= 1.05 * measured
        # The discipline makes the bound not merely tight but exact.
        assert bound == measured

    @pytest.mark.parametrize("fmt", SPARSE_FORMATS)
    def test_sparse_encodings(self, fmt, ternary_spec, rng):
        image = generate_sparse(ternary_spec, fmt)
        self._assert_tight(
            image, rng.integers(0, 2, 16).astype(np.int8)
        )

    def test_dense(self, rng):
        weights = rng.integers(-20, 20, (16, 8)).astype(np.int8)
        bias = rng.integers(-5, 5, 8).astype(np.int32)
        spec = make_dense_spec(
            weights, bias, mult=None, act_out_width=4, relu=True
        )
        self._assert_tight(
            generate_dense(spec),
            rng.integers(-100, 100, 16).astype(np.int8),
        )

    def test_unrolled(self, rng):
        weights = rng.integers(-20, 20, (16, 8)).astype(np.int8)
        bias = rng.integers(-5, 5, 8).astype(np.int32)
        spec = make_dense_spec(
            weights, bias, mult=None, act_out_width=4, relu=True
        )
        self._assert_tight(
            generate_dense_unrolled(spec),
            rng.integers(-100, 100, 16).astype(np.int8),
        )

    def test_cnn(self, rng):
        spec = ConvKernelSpec(
            image_size=8, kernel_size=3, num_filters=2,
            weights=rng.integers(-10, 10, (2, 3, 3)).astype(np.int8),
            bias=rng.integers(-5, 5, 2).astype(np.int32),
        )
        image = generate_conv(spec)
        self._assert_tight(
            image,
            rng.integers(-50, 50, image.input_count).astype(np.int16),
        )

    def test_all_kernel_loops_classified(self, ternary_spec):
        image = generate_sparse(ternary_spec, "block")
        report = verify_kernel_image(image)
        assert report.wcet is not None
        for loop in report.wcet.loops:
            assert loop.idiom == "countdown"


class TestKernelTightnessPerBoard:
    """ISSUE-9: the static bound is exact on EVERY board profile.

    Each board brings its own memory map (the RISC-V part moves both
    the flash and RAM windows) and its own wait-state cost table; the
    WCET discipline must price the same program against the board's
    table and still land exactly on the measured cycle count.
    """

    @pytest.mark.parametrize(
        "board", list(BOARD_PROFILES.values()), ids=list(BOARD_PROFILES)
    )
    @pytest.mark.parametrize("fmt", SPARSE_FORMATS)
    def test_sparse_bound_is_exact_per_board(
        self, fmt, board, ternary_spec, rng
    ):
        image = generate_sparse(
            ternary_spec, fmt, memory=board.make_memory()
        )
        report = verify_kernel_image(image, board)
        assert report.ok, report.format()
        image.write_input(rng.integers(0, 2, 16).astype(np.int8))
        measured = image.run(board).cycles
        assert report.cycle_bound == measured

    def test_bounds_track_the_cost_table(self, ternary_spec, rng):
        """Distinct wait-state models produce distinct exact bounds."""
        x = rng.integers(0, 2, 16).astype(np.int8)
        bounds = {}
        for board in BOARD_PROFILES.values():
            image = generate_sparse(
                ternary_spec, "block", memory=board.make_memory()
            )
            report = verify_kernel_image(image, board)
            image.write_input(x)
            assert report.cycle_bound == image.run(board).cycles
            bounds[board.name] = report.cycle_bound
        assert len(set(bounds.values())) > 1, bounds
