"""Aggregate verification report and deployment integration."""

import numpy as np
import pytest

from repro.analysis import (
    verify_deployed_model,
    verify_kernel_image,
    verify_program,
)
from repro.errors import VerificationError
from repro.kernels.codegen_dense import generate_dense
from repro.kernels.spec import make_dense_spec
from repro.mcu.isa import Assembler, Instr, Op, Program, Reg
from repro.mcu.memory import MemoryMap

RAM = 0x2000_0000


def _assemble(body):
    asm = Assembler()
    body(asm)
    return asm.assemble()


@pytest.fixture()
def dense_image(rng):
    weights = rng.integers(-20, 20, (16, 8)).astype(np.int8)
    bias = rng.integers(-5, 5, 8).astype(np.int32)
    spec = make_dense_spec(
        weights, bias, mult=None, act_out_width=4, relu=True
    )
    return generate_dense(spec)


class TestVerificationReport:
    def test_clean_kernel_passes_every_section(self, dense_image):
        report = verify_kernel_image(dense_image)
        assert report.ok
        assert report.cycle_bound is not None
        report.require_ok()   # must not raise
        text = report.format()
        for section in (
            "structure", "reachable", "discipline", "registers",
            "memory", "wcet",
        ):
            assert section in text
        assert "FAIL" not in text
        assert "verified" in report.summary()

    def test_structural_failure_short_circuits(self):
        program = Program(
            instructions=(Instr(Op.B, (42,)), Instr(Op.HALT, ())),
            labels={}, name="broken",
        )
        report = verify_program(program, MemoryMap.stm32())
        assert not report.ok
        assert report.structural_error is not None
        assert report.taint is None and report.wcet is None
        with pytest.raises(VerificationError, match="invalid"):
            report.require_ok()
        assert "FAIL" in report.format()

    def test_unreachable_code_fails_the_report(self):
        program = Program(
            instructions=(
                Instr(Op.B, (2,)),
                Instr(Op.MOVI, (Reg.R0, 1)),    # dead
                Instr(Op.HALT, ()),
            ),
            labels={}, name="dead",
        )
        report = verify_program(program, MemoryMap.stm32())
        assert not report.ok
        with pytest.raises(VerificationError, match="unreachable") as exc:
            report.require_ok()
        assert exc.value.instruction_index == 1

    def test_discipline_violation_names_instruction(self):
        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.ldrsb(Reg.R1, Reg.R0, 0)
            asm.cmpi(Reg.R1, 0)           # branch on input data
            asm.beq("skip")
            asm.movi(Reg.R2, 1)
            asm.label("skip")
            asm.halt()

        report = verify_program(_assemble(body), MemoryMap.stm32())
        assert not report.ok
        with pytest.raises(VerificationError, match="discipline") as exc:
            report.require_ok()
        assert exc.value.instruction_index == 2
        assert exc.value.pass_name == "taint"

    def test_memsafe_violation_names_instruction(self):
        def body(asm):
            asm.movi(Reg.R0, RAM - 8)
            asm.movi(Reg.R1, 1)
            asm.strb(Reg.R1, Reg.R0, 0)
            asm.halt()

        report = verify_program(_assemble(body), MemoryMap.stm32())
        assert not report.ok
        with pytest.raises(VerificationError) as exc:
            report.require_ok()
        assert exc.value.pass_name == "memsafe"
        assert exc.value.instruction_index == 2
        assert "FAIL" in report.format()


class TestDeployedModelVerification:
    def test_deploy_carries_a_verified_verdict(self, trained_neuroc):
        from repro.deploy.deployer import deploy

        deployment = deploy(trained_neuroc.quantized)
        assert deployment.deployable
        assert deployment.verification is not None
        assert deployment.verified
        assert deployment.verification.total_cycle_bound is not None
        assert "model total" in deployment.verification.format()

    def test_verify_opt_out(self, trained_neuroc):
        from repro.deploy.deployer import deploy

        deployment = deploy(trained_neuroc.quantized, verify=False)
        assert deployment.deployable
        assert deployment.verification is None
        assert not deployment.verified

    def test_per_layer_bound_matches_measured(self, trained_neuroc):
        from repro.deploy.deployer import deploy

        deployment = deploy(trained_neuroc.quantized)
        model = deployment.model
        report = deployment.verification
        for entry, image in zip(report.layers, model.images):
            measured = image.run(model.board).cycles
            assert entry.report.cycle_bound == measured

    def test_violating_layer_is_named(self, dense_image):
        class FakeModel:
            def __init__(self, images, board):
                self.images = images
                self.board = board

        def body(asm):
            asm.movi(Reg.R0, RAM)
            asm.ldrsb(Reg.R1, Reg.R0, 0)
            asm.cmpi(Reg.R1, 0)
            asm.beq("skip")
            asm.movi(Reg.R2, 1)
            asm.label("skip")
            asm.halt()

        class FakeImage:
            program = _assemble(body)
            memory = MemoryMap.stm32()

        from repro.mcu.board import STM32F072RB

        model = FakeModel([dense_image, FakeImage()], STM32F072RB)
        report = verify_deployed_model(model)
        assert not report.ok
        assert report.layers[0].report.ok
        assert not report.layers[1].report.ok
        with pytest.raises(VerificationError, match="layer 1") as exc:
            report.require_ok()
        assert exc.value.instruction_index == 2
