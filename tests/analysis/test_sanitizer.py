"""Runtime lock-order sanitizer: order checks, strict mode,
self-deadlock, Condition compatibility, and runtime instrumentation."""

import threading

import pytest

from repro.analysis.concurrency import (
    LockOrderSanitizer,
    SanitizedLock,
    analyze_paths,
    sanitizer_for_report,
)
from repro.analysis.concurrency.sanitizer import instrument_runtime


def make_sanitizer(strict=False, edges=()):
    return LockOrderSanitizer(
        order=["lock.A", "lock.B", "lock.C"], edges=edges, strict=strict,
    )


class TestOrderChecking:
    def test_in_order_nesting_is_clean(self):
        sanitizer = make_sanitizer(edges=[("lock.A", "lock.B")])
        a, b = sanitizer.wrap("lock.A"), sanitizer.wrap("lock.B")
        with a:
            with b:
                pass
        assert sanitizer.violations == []

    def test_reverse_nesting_is_flagged(self):
        sanitizer = make_sanitizer()
        a, b = sanitizer.wrap("lock.A"), sanitizer.wrap("lock.B")
        with b:
            with a:
                pass
        [violation] = sanitizer.violations
        assert violation.kind == "order"
        assert violation.held == "lock.B"
        assert violation.acquired == "lock.A"
        assert "static order" in violation.format()

    def test_violations_deduplicate_by_pair(self):
        sanitizer = make_sanitizer()
        a, b = sanitizer.wrap("lock.A"), sanitizer.wrap("lock.B")
        for _ in range(5):
            with b:
                with a:
                    pass
        assert len(sanitizer.violations) == 1

    def test_unknown_lock_sorts_last(self):
        sanitizer = make_sanitizer()
        c = sanitizer.wrap("lock.C")
        z = sanitizer.wrap("lock.Z")       # not in the static order
        with c:
            with z:
                pass
        assert sanitizer.violations == []
        with z:
            with c:
                pass
        assert len(sanitizer.violations) == 1

    def test_per_thread_stacks_are_independent(self):
        sanitizer = make_sanitizer()
        a, b = sanitizer.wrap("lock.A"), sanitizer.wrap("lock.B")
        barrier = threading.Barrier(2)

        def hold_a_only():
            with a:
                barrier.wait()
                barrier.wait()

        thread = threading.Thread(target=hold_a_only)
        thread.start()
        barrier.wait()
        # This thread holds nothing: taking B alone is clean even
        # while the other thread holds A.
        with b:
            pass
        barrier.wait()
        thread.join()
        assert sanitizer.violations == []


class TestStrictMode:
    def test_unmodeled_nesting_is_flagged(self):
        sanitizer = make_sanitizer(strict=True)
        a, b = sanitizer.wrap("lock.A"), sanitizer.wrap("lock.B")
        with a:
            with b:                        # in order, but no edge
                pass
        [violation] = sanitizer.violations
        assert violation.kind == "unmodeled"

    def test_modeled_edge_is_clean(self):
        sanitizer = make_sanitizer(
            strict=True, edges=[("lock.A", "lock.B")]
        )
        a, b = sanitizer.wrap("lock.A"), sanitizer.wrap("lock.B")
        with a:
            with b:
                pass
        assert sanitizer.violations == []


class TestSelfDeadlock:
    def test_reacquire_raises_instead_of_hanging(self):
        sanitizer = make_sanitizer()
        a = sanitizer.wrap("lock.A")
        with a:
            with pytest.raises(RuntimeError, match="self-deadlock"):
                a.acquire()

    def test_rlock_reacquire_is_fine(self):
        sanitizer = make_sanitizer()
        a = sanitizer.wrap("lock.A", threading.RLock())
        with a:
            with a:
                pass
        assert sanitizer.violations == []


class TestConditionCompatibility:
    def test_condition_over_sanitized_lock(self):
        sanitizer = make_sanitizer()
        cv = sanitizer.condition("lock.A")
        done = []

        def producer():
            with cv:
                done.append(True)
                cv.notify()

        with cv:
            thread = threading.Thread(target=producer)
            thread.start()
            while not done:
                cv.wait(timeout=1.0)
        thread.join()
        assert done == [True]
        assert sanitizer.violations == []

    def test_wait_releases_the_sanitized_lock(self):
        sanitizer = make_sanitizer()
        cv = sanitizer.condition("lock.A")
        b = sanitizer.wrap("lock.B")
        observed = []

        def prodder():
            # If wait() failed to release lock.A this would deadlock
            # (pytest-timeout not available; rely on cv.wait timeout).
            with cv:
                observed.append("locked")
                cv.notify()

        with cv:
            thread = threading.Thread(target=prodder)
            thread.start()
            cv.wait(timeout=2.0)
        thread.join()
        assert observed == ["locked"]
        # The held stack is balanced afterwards: taking B is clean.
        with b:
            pass
        assert sanitizer.violations == []


class TestInstrumentedRuntime:
    def test_soak_scenario_with_sanitizer(self, small_artifact,
                                          digits_small):
        """A threaded replay through a fully instrumented runtime:
        the statically derived order holds, strictly (no serve lock
        is ever nested inside another)."""
        from pathlib import Path

        import repro
        from repro.serve import (
            ServeConfig,
            ServeRuntime,
            synthetic_trace,
            verify_trace_invariants,
        )

        report = analyze_paths([Path(repro.__file__).parent / "serve"])
        sanitizer = sanitizer_for_report(report, strict=True)
        runtime = ServeRuntime(
            small_artifact,
            ServeConfig(n_devices=2, max_queue_depth=64,
                        max_queue_wait_ms=None),
        )
        instrument_runtime(runtime, sanitizer)
        assert isinstance(runtime._arrival_lock, SanitizedLock)
        trace = synthetic_trace(
            48, 500.0, 64, seed=3, inputs=digits_small.x_test,
        )
        with runtime:
            threads = [
                threading.Thread(
                    target=lambda i=i: [
                        runtime.submit(request)
                        for request in trace[i::2]
                    ]
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        serve_report = runtime.report()
        assert serve_report.offered == 48
        assert verify_trace_invariants(serve_report) == []
        assert sanitizer.violations == [], sanitizer.report()
