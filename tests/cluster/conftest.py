"""Cluster-test fixtures: tiny artifacts and a strict lock sanitizer.

Three session-scoped artifacts share one registry: a *base* model the
clusters boot on, a *good* candidate (same architecture, different
seed — identical cycle cost, so the deploy SLO probe passes) and a
*slow* candidate (much wider layers — ~10x cycles per inference, so the
cycles-ratio SLO discriminator trips and forces a rollback).
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis.concurrency import analyze_paths, sanitizer_for_report
from repro.core.neuroc import NeuroCConfig, train_neuroc
from repro.serve import ModelRegistry, ServeConfig


@pytest.fixture(scope="session")
def cluster_registry():
    return ModelRegistry()


def _train(digits_small, name, seed, hidden=(16,)):
    config = NeuroCConfig(
        n_in=64, n_out=10, hidden=hidden, threshold=0.85,
        name=name, seed=seed,
    )
    return train_neuroc(config, digits_small, epochs=10, lr=0.01)


@pytest.fixture(scope="session")
def base_artifact(cluster_registry, digits_small):
    trained = _train(digits_small, "cluster-base", seed=0)
    return cluster_registry.register(trained.quantized)


@pytest.fixture(scope="session")
def good_artifact(cluster_registry, digits_small):
    """Same architecture as base, different weights: cycle ratio ~1."""
    trained = _train(digits_small, "cluster-good", seed=1)
    return cluster_registry.register(trained.quantized)


@pytest.fixture(scope="session")
def slow_artifact(cluster_registry, digits_small):
    """Much wider model: the cycles-ratio SLO discriminator trips."""
    trained = _train(digits_small, "cluster-slow", seed=2,
                     hidden=(48, 48))
    return cluster_registry.register(trained.quantized)


@pytest.fixture
def small_serve_config():
    """Two devices per fleet keeps interpreted replay fast."""
    return ServeConfig(n_devices=2, max_queue_depth=32)


@pytest.fixture(scope="session")
def cluster_concurrency_report():
    """Static concurrency analysis of serve + cluster, computed once."""
    package = Path(repro.__file__).parent
    return analyze_paths([package / "serve", package / "cluster"])


@pytest.fixture
def cluster_sanitizer(cluster_concurrency_report):
    """Strict sanitizer covering the serve AND cluster lock sets.

    Serve and cluster locks are all leaf-level by design, so strict
    mode (flagging ANY nesting) must stay silent across a full cluster
    replay; the teardown assertion enforces it for every test that
    instruments its cluster.
    """
    sanitizer = sanitizer_for_report(
        cluster_concurrency_report, strict=True
    )
    yield sanitizer
    assert sanitizer.violations == [], sanitizer.report()
