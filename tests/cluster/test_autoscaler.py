"""Autoscaler decision-logic tests against synthetic fleet signals."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ACTIVE,
    DRAINING,
    SCALE_DOWN,
    SCALE_UP,
    Autoscaler,
    AutoscalerConfig,
    FleetSignals,
)
from repro.errors import ConfigurationError


def _signals(n, *, shed=0.0, wait=0.0, util=0.5, state=ACTIVE):
    return [
        FleetSignals(
            fleet=f"fleet-{i}", state=state, offered_per_s=1000.0,
            shed_per_s=shed * 1000.0, shed_fraction=shed,
            utilization=util, queue_depth=0, est_queue_wait_ms=wait,
        )
        for i in range(n)
    ]


def _config(**overrides):
    defaults = dict(min_fleets=1, max_fleets=4, up_ticks=2,
                    down_ticks=3, cooldown_ms=100.0)
    defaults.update(overrides)
    return AutoscalerConfig(**defaults)


class TestValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_fleets=3, max_fleets=2)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_fleets=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(up_ticks=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(cooldown_ms=-1.0)


class TestScaleUp:
    def test_needs_a_streak_not_one_noisy_tick(self):
        scaler = Autoscaler(_config(up_ticks=3))
        overloaded = _signals(2, shed=0.5)
        assert scaler.decide(0.0, overloaded) is None
        assert scaler.decide(10.0, overloaded) is None
        decision = scaler.decide(20.0, overloaded)
        assert decision is not None and decision.action == SCALE_UP

    def test_streak_resets_on_a_calm_tick(self):
        scaler = Autoscaler(_config(up_ticks=2))
        assert scaler.decide(0.0, _signals(2, shed=0.5)) is None
        assert scaler.decide(10.0, _signals(2)) is None      # calm
        assert scaler.decide(20.0, _signals(2, shed=0.5)) is None
        decision = scaler.decide(30.0, _signals(2, shed=0.5))
        assert decision is not None and decision.action == SCALE_UP

    @pytest.mark.parametrize("kwargs", [
        {"shed": 0.2}, {"wait": 500.0}, {"util": 0.99},
    ])
    def test_any_overload_signal_trips(self, kwargs):
        scaler = Autoscaler(_config(up_ticks=1))
        decision = scaler.decide(0.0, _signals(2, **kwargs))
        assert decision is not None and decision.action == SCALE_UP

    def test_capped_at_max_fleets(self):
        scaler = Autoscaler(_config(max_fleets=2, up_ticks=1))
        assert scaler.decide(0.0, _signals(2, shed=0.9)) is None

    def test_draining_fleets_do_not_count(self):
        scaler = Autoscaler(_config(max_fleets=2, up_ticks=1))
        signals = _signals(2, shed=0.9) + _signals(1, state=DRAINING)
        # 2 ACTIVE == max_fleets even though 3 fleets exist.
        assert scaler.decide(0.0, signals) is None


class TestScaleDown:
    def test_requires_all_idle_conditions(self):
        scaler = Autoscaler(_config(down_ticks=1))
        # Idle utilization but sheds: not idle.
        still_shedding = _signals(2, util=0.1, shed=0.01)
        assert scaler.decide(0.0, still_shedding) is None
        # Properly idle.
        decision = scaler.decide(10.0, _signals(2, util=0.1, wait=0.0))
        assert decision is not None and decision.action == SCALE_DOWN

    def test_needs_longer_streak_than_scale_up(self):
        scaler = Autoscaler(_config(down_ticks=3))
        idle = _signals(2, util=0.05)
        assert scaler.decide(0.0, idle) is None
        assert scaler.decide(10.0, idle) is None
        decision = scaler.decide(20.0, idle)
        assert decision is not None and decision.action == SCALE_DOWN

    def test_floored_at_min_fleets(self):
        scaler = Autoscaler(_config(min_fleets=1, down_ticks=1))
        assert scaler.decide(0.0, _signals(1, util=0.0)) is None


class TestHysteresis:
    def test_cooldown_blocks_back_to_back_actions(self):
        scaler = Autoscaler(_config(up_ticks=1, cooldown_ms=100.0))
        overloaded = _signals(1, shed=0.5)
        first = scaler.decide(0.0, overloaded)
        assert first is not None
        # Still overloaded, but inside the cooldown window.
        assert scaler.decide(50.0, overloaded) is None
        assert scaler.decide(99.0, overloaded) is None
        second = scaler.decide(101.0, overloaded)
        assert second is not None
        assert scaler.decisions == [first, second]

    def test_asymmetric_thresholds_never_flap(self):
        """A utilization between the down and up bars moves nothing."""
        scaler = Autoscaler(_config(up_ticks=1, down_ticks=1,
                                    cooldown_ms=0.0))
        steady = _signals(2, util=0.6)
        for tick in range(20):
            assert scaler.decide(float(tick * 10), steady) is None

    def test_decisions_record_reasons(self):
        scaler = Autoscaler(_config(up_ticks=1))
        decision = scaler.decide(5.0, _signals(2, shed=0.25))
        assert decision.time_ms == 5.0
        assert decision.n_fleets == 2
        assert "shed=0.250" in decision.reason
