"""Cluster integration: replay, conservation, autoscaling, trace export."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ACTIVE,
    Cluster,
    ClusterConfig,
    AutoscalerConfig,
    Fleet,
    generation_namespace,
    verify_cluster_invariants,
)
from repro.errors import ConfigurationError, ServeError
from repro.serve import ServeConfig, synthetic_trace


def _trace(digits_small, n=200, rate=15_000.0, seed=9):
    return synthetic_trace(n, rate, 64, seed=seed,
                           inputs=digits_small.x_test)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_fleets=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(router_policy="nope")
        with pytest.raises(ConfigurationError):
            ClusterConfig(tick_ms=0.0)

    def test_submit_before_start_is_typed(
        self, base_artifact, digits_small
    ):
        cluster = Cluster(base_artifact)
        with pytest.raises(ServeError):
            cluster.submit(_trace(digits_small, n=1)[0])

    def test_double_start_rejected(self, base_artifact):
        cluster = Cluster(base_artifact, ClusterConfig(
            n_fleets=1, serve=ServeConfig(n_devices=1),
        ))
        cluster.start()
        try:
            with pytest.raises(ServeError):
                cluster.start()
        finally:
            cluster.drain()


class TestReplayConservation:
    @pytest.mark.parametrize(
        "policy", ["hash", "least-queue-wait", "deadline-p2c"]
    )
    def test_every_policy_conserves_and_verifies(
        self, base_artifact, digits_small, small_serve_config, policy,
    ):
        cluster = Cluster(base_artifact, ClusterConfig(
            n_fleets=3, serve=small_serve_config,
            router_policy=policy, tick_ms=2.0,
        ))
        cluster.start()
        report = cluster.replay(_trace(digits_small))
        violations = verify_cluster_invariants(
            report, cluster.submitted_ids
        )
        assert not violations, "\n".join(violations)
        assert report.submitted == 200
        assert report.conserved
        assert report.router_policy == policy
        assert report.completed > 0
        # All three fleets saw traffic.
        assert len(report.generations) == 3
        assert all(g.report.offered > 0 for g in report.generations)

    def test_context_manager_drains(self, base_artifact, digits_small,
                                    small_serve_config):
        with Cluster(base_artifact, ClusterConfig(
            n_fleets=2, serve=small_serve_config, tick_ms=2.0,
        )) as cluster:
            for request in _trace(digits_small, n=60):
                cluster.submit(request)
        report = cluster.report()
        assert not verify_cluster_invariants(
            report, cluster.submitted_ids
        )
        assert report.offered == 60


class TestAutoscaling:
    def test_overload_scales_up_and_invariants_hold(
        self, base_artifact, digits_small, small_serve_config,
    ):
        cluster = Cluster(base_artifact, ClusterConfig(
            n_fleets=1, serve=small_serve_config, tick_ms=2.0,
            signal_window_ms=10.0,
            autoscaler=AutoscalerConfig(
                min_fleets=1, max_fleets=3, up_ticks=2,
                up_shed_fraction=0.02, cooldown_ms=4.0,
            ),
        ))
        cluster.start()
        # Far over one fleet's capacity: shed shows up immediately.
        report = cluster.replay(
            _trace(digits_small, n=400, rate=60_000.0)
        )
        violations = verify_cluster_invariants(
            report, cluster.submitted_ids
        )
        assert not violations, "\n".join(violations)
        ups = [d for d in report.scale_decisions
               if d.action == "scale_up"]
        assert ups, "overload never triggered a scale-up"
        assert len({g.fleet for g in report.generations}) >= 2

    def test_idle_scales_down_to_floor(
        self, base_artifact, digits_small, small_serve_config,
    ):
        cluster = Cluster(base_artifact, ClusterConfig(
            n_fleets=3, serve=small_serve_config, tick_ms=2.0,
            signal_window_ms=10.0,
            autoscaler=AutoscalerConfig(
                min_fleets=1, max_fleets=3, down_ticks=2,
                down_utilization=0.9, down_queue_wait_ms=50.0,
                cooldown_ms=4.0,
            ),
        ))
        cluster.start()
        # A long quiet trickle: far below capacity.
        report = cluster.replay(
            _trace(digits_small, n=80, rate=500.0)
        )
        assert not verify_cluster_invariants(
            report, cluster.submitted_ids
        )
        downs = [d for d in report.scale_decisions
                 if d.action == "scale_down"]
        assert downs, "idle cluster never scaled down"
        # Every drained fleet's requests still landed somewhere.
        assert report.conserved


class TestFleetLifecycle:
    def test_shutdown_fleet_refuses_then_cluster_reroutes(
        self, base_artifact, digits_small, small_serve_config,
    ):
        fleet = Fleet(0, base_artifact, small_serve_config)
        request = _trace(digits_small, n=1)[0]
        assert fleet.submit(request) is True
        fleet.shutdown()
        assert fleet.submit(request) is None     # no live generation
        assert fleet.state == "retired"
        (gen_index, model_id, report), = fleet.generation_reports()
        assert gen_index == 0
        assert model_id == base_artifact.model_id
        assert report.offered == 1

    def test_generation_namespaces(
        self, base_artifact, good_artifact, small_serve_config,
    ):
        fleet = Fleet(4, base_artifact, small_serve_config)
        assert fleet._current().runtime.tracer.namespace == "fleet-4"
        old = fleet.begin_generation(good_artifact)
        fleet.retire_generation(old)
        assert fleet._current().runtime.tracer.namespace == "fleet-4.g1"
        fleet.shutdown()
        assert generation_namespace("fleet-4", 0) == "fleet-4"
        assert generation_namespace("fleet-4", 1) == "fleet-4.g1"


class TestTraceExport:
    def test_merged_chrome_trace_has_one_process_per_generation(
        self, base_artifact, digits_small, small_serve_config,
    ):
        cluster = Cluster(base_artifact, ClusterConfig(
            n_fleets=2, serve=small_serve_config, tick_ms=2.0,
        ))
        cluster.start()
        cluster.replay(_trace(digits_small, n=80))
        trace = cluster.chrome_trace(labels={"run": "test"})
        events = trace["traceEvents"]
        processes = {
            e["pid"]: e["args"]["name"] for e in events
            if e.get("name") == "process_name"
        }
        assert set(processes.values()) == {
            "repro.serve/fleet-0", "repro.serve/fleet-1",
        }
        fleet_args = {
            e["args"]["fleet"] for e in events
            if e.get("cat") == "serve"
        }
        assert fleet_args == {"fleet-0", "fleet-1"}

    def test_report_format_mentions_deploys(
        self, base_artifact, good_artifact, cluster_registry,
        digits_small, small_serve_config,
    ):
        from repro.cluster import SLOPolicy

        cluster = Cluster(base_artifact, ClusterConfig(
            n_fleets=1, serve=small_serve_config, tick_ms=2.0,
        ), registry=cluster_registry)
        cluster.start()
        cluster.schedule_deploy(
            good_artifact, 3.0,
            slo=SLOPolicy(min_probe_completed=3, probe_ms=200.0),
        )
        report = cluster.replay(_trace(digits_small, n=200))
        text = report.format()
        assert "cluster:" in text
        assert "deploy @" in text
        assert "goodput" in text
