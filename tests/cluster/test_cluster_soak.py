"""Cluster soak: 10x overload, rolling deploys, strict lock sanitizer.

The ISSUE-7 acceptance run.  Four fleets of four devices each take an
open-loop trace at ten times a single fleet's offered load from
multi-threaded paced producers while the control loop ticks on the
simulated clock.  Mid-replay, two rolling deploys fire:

1. a *good* model (same architecture, different weights) — the SLO
   probe sees a cycles ratio of ~1.0 under live traffic and the deploy
   cuts over every fleet and completes;
2. a *slow* model (~4x cycles per inference) — the cycles-ratio
   discriminator breaches and the deployer rolls every cut-over fleet
   back, releasing the bad model's registry references.

Afterwards, every cluster-scope invariant must hold — per-generation
trace invariants, cluster conservation, the zero-lost-requests outcome
ledger, per-fleet span stamping — and the strict lock-order sanitizer
(covering the cluster's, router's, fleets', and every runtime's locks)
must have seen zero nesting.

Reduced configuration: set ``REPRO_CLUSTER_SOAK_REQUESTS`` (the CI job
uses 300) to shrink the run; the default soaks 900 requests.
"""

from __future__ import annotations

import os
import threading
import time

from repro.analysis.concurrency import instrument_cluster
from repro.cluster import (
    Cluster,
    ClusterConfig,
    SLOPolicy,
    fleet_capacity_rps,
    verify_cluster_invariants,
)
from repro.serve import ServeConfig, synthetic_trace

N_REQUESTS = int(os.environ.get("REPRO_CLUSTER_SOAK_REQUESTS", "900"))
N_FLEETS = 4
N_DEVICES = 4
N_PRODUCERS = 4
LOAD_FACTOR = 10.0                 # x one fleet's offered capacity
QUEUE_DEPTH = 8                    # small on purpose: floods must shed


def test_cluster_soak_overload_deploys_and_sanitizer(
    base_artifact, good_artifact, slow_artifact, cluster_registry,
    cluster_sanitizer, digits_small,
):
    capacity = fleet_capacity_rps(base_artifact, N_DEVICES)
    rate = LOAD_FACTOR * capacity
    trace = synthetic_trace(
        N_REQUESTS, rate, 64, seed=47, inputs=digits_small.x_test,
    )
    span_ms = trace[-1].arrival_ms
    tick_ms = span_ms / 60.0

    cluster = Cluster(
        base_artifact,
        ClusterConfig(
            n_fleets=N_FLEETS,
            serve=ServeConfig(
                n_devices=N_DEVICES,
                max_queue_depth=QUEUE_DEPTH,
            ),
            router_policy="hash",
            tick_ms=tick_ms,
            signal_window_ms=max(2.0, span_ms / 4.0),
        ),
        registry=cluster_registry,
    )
    instrument_cluster(cluster, cluster_sanitizer)
    cluster.start()

    slo = SLOPolicy(min_probe_completed=3, probe_ms=200.0,
                    max_cycles_ratio=2.0)
    cluster.schedule_deploy(good_artifact, 0.35 * span_ms, slo=slo)
    cluster.schedule_deploy(slow_artifact, 0.75 * span_ms, slo=slo)

    # Multi-threaded producers in two phases.  The first quarter of the
    # trace floods in unpaced — at 10x load that overruns every fleet
    # queue and forces shedding.  The rest is paced against the control
    # loop's published tick time (NOT the device clock: devices burn
    # through a backlog between two wall-clock slices of the control
    # thread, so clock-paced traffic can end before the first tick).
    # Control-paced traffic guarantees both deploy probes run under
    # live load.
    flood_cut = N_REQUESTS // 4
    lead_ms = 2.0 * tick_ms

    def produce(slice_index: int) -> None:
        for index in range(slice_index, N_REQUESTS, N_PRODUCERS):
            request = trace[index]
            if index >= flood_cut:
                while cluster.control_ms + lead_ms < request.arrival_ms:
                    time.sleep(0.0002)
            cluster.submit(request)

    producers = [
        threading.Thread(target=produce, args=(i,), name=f"producer-{i}")
        for i in range(N_PRODUCERS)
    ]
    for producer in producers:
        producer.start()
    # Control loop on the main thread: one simulated tick per wall
    # slice, which is exactly what the paced producers gate on.
    now = 0.0
    while any(p.is_alive() for p in producers):
        now += tick_ms
        cluster.tick(now)
        time.sleep(0.001)
    for producer in producers:
        producer.join()

    cluster.drain()
    report = cluster.report()

    # -- cluster-scope invariants, including through both deploys ------
    violations = verify_cluster_invariants(report, cluster.submitted_ids)
    assert not violations, "\n".join(violations)
    assert report.submitted == N_REQUESTS
    assert report.conserved
    assert report.rejected > 0, "10x overload should shed"
    assert report.completed > 0

    # -- deploy 1 (good) completed; deploy 2 (slow) forced a rollback --
    events = report.deploy_events
    good_kinds = [e.kind for e in events
                  if e.model_id == good_artifact.model_id]
    slow_kinds = [e.kind for e in events
                  if e.model_id == slow_artifact.model_id]
    assert "complete" in good_kinds, good_kinds
    assert good_kinds.count("cutover") == N_FLEETS
    assert "rollback" in slow_kinds, slow_kinds
    assert "complete" not in slow_kinds
    # Rollback restored the promoted good model on every touched fleet.
    newest_by_fleet = {}
    for gen in report.generations:
        current = newest_by_fleet.get(gen.fleet)
        if current is None or gen.generation > current.generation:
            newest_by_fleet[gen.fleet] = gen
    assert len(newest_by_fleet) == N_FLEETS
    for gen in newest_by_fleet.values():
        assert gen.model_id == good_artifact.model_id
    # The slow model's fleet references were all released again.
    assert cluster_registry.refcount(slow_artifact.model_id) == 1

    # -- zero lock nesting across every cluster/serve lock -------------
    assert cluster_sanitizer.violations == [], cluster_sanitizer.report()


def test_cluster_soak_fused_engine(
    base_artifact, cluster_registry, cluster_sanitizer, digits_small,
):
    """ISSUE-8: a cluster whose fleets run ``engine="fastpath-v2"``.

    A flooded overload trace forces real batches on every fleet, so the
    fused dispatch path (one vectorized device call per admitted batch)
    carries the bulk of the load — and every cluster-scope invariant,
    including per-request execute spans and ``busy_ms`` accounting
    inside each generation, plus the strict lock sanitizer, must hold
    exactly as on the per-request engine.
    """
    n_requests = max(120, N_REQUESTS // 3)
    capacity = fleet_capacity_rps(base_artifact, 2)
    trace = synthetic_trace(
        n_requests, 3.0 * capacity, 64, seed=53,
        inputs=digits_small.x_test,
    )
    cluster = Cluster(
        base_artifact,
        ClusterConfig(
            n_fleets=2,
            serve=ServeConfig(
                n_devices=2, max_queue_depth=64, max_batch=16,
                engine="fastpath-v2",
            ),
            router_policy="hash",
            tick_ms=trace[-1].arrival_ms / 20.0,
            signal_window_ms=max(2.0, trace[-1].arrival_ms / 4.0),
        ),
        registry=cluster_registry,
    )
    instrument_cluster(cluster, cluster_sanitizer)
    cluster.start()
    for request in trace:
        cluster.submit(request)
    cluster.drain()
    report = cluster.report()

    violations = verify_cluster_invariants(report, cluster.submitted_ids)
    assert not violations, "\n".join(violations)
    assert report.submitted == n_requests
    assert report.conserved
    fused_batches = sum(
        g.report.metrics["counters"].get("batches.fused", 0)
        for g in report.generations
    )
    assert fused_batches > 0, "flooded fleets should dispatch fused"
    assert cluster_sanitizer.violations == [], cluster_sanitizer.report()
