"""Rolling deploys: cutover, SLO probe, rollback — zero lost requests."""

from __future__ import annotations

from repro.cluster import (
    Cluster,
    ClusterConfig,
    SLOPolicy,
    verify_cluster_invariants,
)
from repro.serve import ServeConfig, synthetic_trace


def _cluster(artifact, registry, *, n_fleets=2, policy="hash"):
    return Cluster(
        artifact,
        ClusterConfig(
            n_fleets=n_fleets,
            serve=ServeConfig(n_devices=2, max_queue_depth=32),
            router_policy=policy,
            tick_ms=2.0,
        ),
        registry=registry,
    )


def _trace(digits_small, n=300, rate=20_000.0, seed=5):
    return synthetic_trace(n, rate, 64, seed=seed,
                           inputs=digits_small.x_test)


_SLO = SLOPolicy(min_probe_completed=5, probe_ms=200.0,
                 max_cycles_ratio=2.0)


class TestGoodDeploy:
    def test_rolls_through_every_fleet_and_completes(
        self, base_artifact, good_artifact, cluster_registry,
        digits_small,
    ):
        cluster = _cluster(base_artifact, cluster_registry)
        cluster.start()
        cluster.schedule_deploy(good_artifact, 4.0, slo=_SLO)
        report = cluster.replay(_trace(digits_small))
        violations = verify_cluster_invariants(
            report, cluster.submitted_ids
        )
        assert not violations, "\n".join(violations)

        kinds = [e.kind for e in report.deploy_events]
        assert kinds.count("cutover") == 2       # one per fleet
        assert kinds.count("probe_pass") == 2
        assert kinds[-1] == "complete"
        assert "rollback" not in kinds
        # Both fleets retired their blue generation and completed on
        # green: 2 generations per fleet, green ran the target model.
        by_fleet = {}
        for gen in report.generations:
            by_fleet.setdefault(gen.fleet, []).append(gen)
        for fleet, gens in by_fleet.items():
            assert [g.generation for g in sorted(
                gens, key=lambda g: g.generation)] == [0, 1]
            newest = max(gens, key=lambda g: g.generation)
            assert newest.model_id == good_artifact.model_id

    def test_promotion_makes_target_the_cluster_model(
        self, base_artifact, good_artifact, cluster_registry,
        digits_small,
    ):
        cluster = _cluster(base_artifact, cluster_registry, n_fleets=1)
        cluster.start()
        cluster.schedule_deploy(good_artifact, 4.0, slo=_SLO)
        # Drive the deploy to completion inside replay, then add a
        # fleet: it must flash the promoted target, not the old base.
        trace = _trace(digits_small, n=200)
        next_tick = 2.0
        for request in trace:
            while request.arrival_ms >= next_tick:
                cluster.tick(next_tick)
                next_tick += 2.0
            cluster.submit(request)
        cluster._finish_deploys()
        fleet = cluster._add_fleet()
        assert fleet.model_id == good_artifact.model_id
        cluster.drain()
        report = cluster.report()
        assert not verify_cluster_invariants(
            report, cluster.submitted_ids
        )

    def test_already_on_target_completes_immediately(
        self, base_artifact, cluster_registry, digits_small,
    ):
        cluster = _cluster(base_artifact, cluster_registry)
        cluster.start()
        cluster.schedule_deploy(base_artifact, 1.0, slo=_SLO)
        report = cluster.replay(_trace(digits_small, n=100))
        kinds = [e.kind for e in report.deploy_events]
        assert kinds == ["complete"]             # nothing to cut over
        assert len(report.generations) == 2      # no extra generations


class TestRollback:
    def test_slow_model_trips_cycles_ratio_and_rolls_back(
        self, base_artifact, slow_artifact, cluster_registry,
        digits_small,
    ):
        cluster = _cluster(base_artifact, cluster_registry)
        cluster.start()
        cluster.schedule_deploy(slow_artifact, 4.0, slo=_SLO)
        report = cluster.replay(_trace(digits_small, n=400))
        violations = verify_cluster_invariants(
            report, cluster.submitted_ids
        )
        assert not violations, "\n".join(violations)

        kinds = [e.kind for e in report.deploy_events]
        assert "cutover" in kinds
        assert "probe_fail" in kinds
        assert "rollback" in kinds
        assert "complete" not in kinds
        fail = next(e for e in report.deploy_events
                    if e.kind == "probe_fail")
        assert "cycles ratio" in fail.detail
        # Every fleet's newest retired-or-live generation runs the
        # restored blue model again.
        by_fleet = {}
        for gen in report.generations:
            by_fleet.setdefault(gen.fleet, []).append(gen)
        for gens in by_fleet.values():
            newest = max(gens, key=lambda g: g.generation)
            assert newest.model_id == base_artifact.model_id

    def test_rollback_releases_green_references(
        self, base_artifact, slow_artifact, cluster_registry,
        digits_small,
    ):
        before = cluster_registry.refcount(slow_artifact.model_id)
        cluster = _cluster(base_artifact, cluster_registry)
        cluster.start()
        cluster.schedule_deploy(slow_artifact, 4.0, slo=_SLO)
        cluster.replay(_trace(digits_small, n=300))
        # Green generations acquired and released; no references leak.
        assert cluster_registry.refcount(
            slow_artifact.model_id
        ) == before

    def test_no_goodput_probe_times_out_and_rolls_back(
        self, base_artifact, good_artifact, cluster_registry,
        digits_small,
    ):
        """A deploy cut over after traffic stops gets no completions;
        the probe deadline treats that as a breach."""
        cluster = _cluster(base_artifact, cluster_registry)
        cluster.start()
        # Trace spans ~15ms; the deploy fires long after it ends.
        cluster.schedule_deploy(good_artifact, 1_000.0, slo=_SLO)
        report = cluster.replay(_trace(digits_small, n=200))
        assert not verify_cluster_invariants(
            report, cluster.submitted_ids
        )
        fail = next(e for e in report.deploy_events
                    if e.kind == "probe_fail")
        assert "completions" in fail.detail
        assert any(e.kind == "rollback" for e in report.deploy_events)
