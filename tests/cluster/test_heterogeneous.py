"""Heterogeneous fleets: mixed board classes behind one router (ISSUE 9).

The same trained model is registered once per board profile — each
registration is a distinct content-addressed artifact with its own
per-board latency model — and a cluster flashes one fleet per board.
The latency-aware router policies (`least-queue-wait`, `deadline-p2c`)
then route on each fleet's own ``est_queue_wait_ms``, which is derived
from the artifact's per-board ``cycles_to_ms`` latency.  Every
cluster-scope invariant and the strict lock sanitizer must hold exactly
as on a homogeneous cluster.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.concurrency import instrument_cluster
from repro.cluster import (
    Cluster,
    ClusterConfig,
    verify_cluster_invariants,
)
from repro.mcu.board import (
    CORTEX_M4_REFERENCE,
    CORTEX_M7_REFERENCE,
    STM32F072RB,
)
from repro.serve import ServeConfig, synthetic_trace

N_REQUESTS = int(os.environ.get("REPRO_CLUSTER_SOAK_REQUESTS", "900")) // 3

#: Slow → fast: 8 MHz M0, 120 MHz M4, 480 MHz M7.
MIXED_BOARDS = (STM32F072RB, CORTEX_M4_REFERENCE, CORTEX_M7_REFERENCE)


@pytest.fixture(scope="module")
def mixed_artifacts(cluster_registry, digits_small):
    """One artifact per board class, same weights, shared registry."""
    from repro.core.neuroc import NeuroCConfig, train_neuroc

    config = NeuroCConfig(
        n_in=64, n_out=10, hidden=(16,), threshold=0.85,
        name="hetero", seed=5,
    )
    trained = train_neuroc(config, digits_small, epochs=10, lr=0.01)
    return tuple(
        cluster_registry.register(trained.quantized, board=board)
        for board in MIXED_BOARDS
    )


def test_per_board_artifacts_are_distinct(mixed_artifacts):
    ids = {artifact.model_id for artifact in mixed_artifacts}
    assert len(ids) == len(MIXED_BOARDS)
    latencies = [a.deployment.latency_ms for a in mixed_artifacts]
    # Strictly faster boards: M0 > M4 > M7 per-inference latency.
    assert latencies[0] > latencies[1] > latencies[2]


def test_fleets_flash_artifacts_round_robin(
    mixed_artifacts, cluster_registry,
):
    cluster = Cluster(
        mixed_artifacts,
        ClusterConfig(
            n_fleets=4,
            serve=ServeConfig(n_devices=1),
            router_policy="hash",
        ),
        registry=cluster_registry,
    )
    cluster.start()
    cluster.drain()
    report = cluster.report()
    by_fleet = {gen.fleet: gen.model_id for gen in report.generations}
    expected = {
        f"fleet-{fleet}":
            mixed_artifacts[fleet % len(mixed_artifacts)].model_id
        for fleet in range(4)
    }
    assert by_fleet == expected


def test_mixed_board_soak_least_queue_wait(
    mixed_artifacts, cluster_registry, cluster_sanitizer, digits_small,
):
    """Flooded mixed-board cluster under `least-queue-wait`: invariants
    and the strict sanitizer hold, and the router demonstrably shifts
    load toward the faster boards (whose queues drain quicker)."""
    from repro.cluster import fleet_capacity_rps

    # Price the flood against the *slowest* fleet so its queue builds.
    capacity = fleet_capacity_rps(mixed_artifacts[0], 2)
    trace = synthetic_trace(
        N_REQUESTS, 6.0 * capacity, 64, seed=61,
        inputs=digits_small.x_test,
    )
    cluster = Cluster(
        mixed_artifacts,
        ClusterConfig(
            n_fleets=len(MIXED_BOARDS),
            serve=ServeConfig(n_devices=2, max_queue_depth=16),
            router_policy="least-queue-wait",
            tick_ms=trace[-1].arrival_ms / 20.0,
            signal_window_ms=max(2.0, trace[-1].arrival_ms / 4.0),
        ),
        registry=cluster_registry,
    )
    instrument_cluster(cluster, cluster_sanitizer)
    cluster.start()
    for request in trace:
        cluster.submit(request)
    cluster.drain()
    report = cluster.report()

    violations = verify_cluster_invariants(report, cluster.submitted_ids)
    assert not violations, "\n".join(violations)
    assert report.submitted == N_REQUESTS
    assert report.conserved
    assert report.completed > 0

    # Per-fleet completions: the M7 fleet's est_queue_wait_ms is ~60x
    # smaller per queued request than the M0 fleet's, so the router
    # must push the bulk of the flood at the faster boards.
    completed = {}
    for gen in report.generations:
        counts = gen.report.metrics["counters"]
        completed[gen.fleet] = completed.get(gen.fleet, 0) + int(
            counts.get("requests.completed", 0)
        )
    m0_fleet, m7_fleet = "fleet-0", "fleet-2"
    assert completed[m7_fleet] > completed[m0_fleet], completed
    assert cluster_sanitizer.violations == [], cluster_sanitizer.report()


def test_mixed_board_deadline_p2c(
    mixed_artifacts, cluster_registry, cluster_sanitizer, digits_small,
):
    """`deadline-p2c` on a mixed cluster: per-board wait estimates feed
    the slack filter, every invariant holds, deadlines are honored."""
    from repro.cluster import fleet_capacity_rps

    n_requests = max(60, N_REQUESTS // 2)
    capacity = fleet_capacity_rps(mixed_artifacts[0], 2)
    # Deadline: generous vs the fast boards, tight vs a queued-up M0.
    deadline_ms = 4.0 * mixed_artifacts[0].deployment.latency_ms
    trace = synthetic_trace(
        n_requests, 4.0 * capacity, 64, seed=67,
        deadline_ms=deadline_ms, inputs=digits_small.x_test,
    )
    cluster = Cluster(
        mixed_artifacts,
        ClusterConfig(
            n_fleets=len(MIXED_BOARDS),
            serve=ServeConfig(n_devices=2, max_queue_depth=16),
            router_policy="deadline-p2c",
            router_seed=7,
            tick_ms=trace[-1].arrival_ms / 20.0,
            signal_window_ms=max(2.0, trace[-1].arrival_ms / 4.0),
        ),
        registry=cluster_registry,
    )
    instrument_cluster(cluster, cluster_sanitizer)
    cluster.start()
    for request in trace:
        cluster.submit(request)
    cluster.drain()
    report = cluster.report()

    violations = verify_cluster_invariants(report, cluster.submitted_ids)
    assert not violations, "\n".join(violations)
    assert report.submitted == n_requests
    assert report.conserved
    assert report.completed > 0
    assert cluster_sanitizer.violations == [], cluster_sanitizer.report()
