"""Router property tests: stickiness, remap bounds, drain safety.

These run against lightweight stand-in fleets (the router only reads
``state``, ``fleet_id``, ``name``, and the two live load signals), so
thousands of routing decisions cost microseconds.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ACTIVE,
    DRAINING,
    NoRoutableFleetError,
    Router,
)
from repro.cluster.router import _stable_hash
from repro.errors import ConfigurationError
from repro.serve.request import InferenceRequest


class StubFleet:
    def __init__(self, fleet_id, wait_ms=0.0, depth=0, state=ACTIVE):
        self.fleet_id = fleet_id
        self.name = f"fleet-{fleet_id}"
        self.state = state
        self._wait_ms = wait_ms
        self._depth = depth

    def est_queue_wait_ms(self):
        return self._wait_ms

    def queue_depth(self):
        return self._depth


def _request(request_id, arrival_ms=0.0, deadline_ms=None):
    return InferenceRequest(
        request_id=request_id, x=None, arrival_ms=arrival_ms,
        deadline_ms=deadline_ms,
    )


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            Router("round-robin")

    def test_no_active_fleet_is_typed(self):
        router = Router("hash")
        drained = [StubFleet(0, state=DRAINING)]
        with pytest.raises(NoRoutableFleetError):
            router.route(_request(1), drained)

    def test_stable_hash_is_process_independent(self):
        # sha256-derived, NOT the salted builtin hash().
        assert _stable_hash("req:42") == _stable_hash("req:42")
        assert _stable_hash("req:42") == 0x1400F8F2C5F2B608


class TestConsistentHash:
    def test_sticky_same_key_same_fleet(self):
        router = Router("hash")
        fleets = [StubFleet(i) for i in range(4)]
        for request_id in range(50):
            first = router.route(_request(request_id), fleets)
            again = router.route(_request(request_id), fleets)
            assert first is again

    @pytest.mark.parametrize("n_before,n_after", [(4, 5), (5, 4)])
    def test_remap_fraction_near_k_over_n(self, n_before, n_after):
        """Adding/removing one fleet remaps ~K/N keys, not everything.

        The theoretical fraction is 1/max(n_before, n_after); vnode
        placement noise allows a small multiple, far below the ~1 - 1/N
        a modulo hash would remap.
        """
        router = Router("hash")
        keys = 2_000
        before = [StubFleet(i) for i in range(n_before)]
        after = [StubFleet(i) for i in range(n_after)]
        placements = {
            rid: router.route(_request(rid), before).fleet_id
            for rid in range(keys)
        }
        moved = sum(
            router.route(_request(rid), after).fleet_id != fleet_id
            for rid, fleet_id in placements.items()
        )
        ideal = keys / max(n_before, n_after)
        assert moved <= 2.0 * ideal, (
            f"{moved}/{keys} keys remapped; ideal ~{ideal:.0f}"
        )
        # Keys that stayed must not have shuffled among surviving
        # fleets: every move involves the added/removed fleet.
        if n_after > n_before:
            new_id = n_after - 1
            for rid, fleet_id in placements.items():
                now = router.route(_request(rid), after).fleet_id
                assert now == fleet_id or now == new_id

    def test_never_routes_to_draining_fleet(self):
        router = Router("hash")
        fleets = [StubFleet(0), StubFleet(1, state=DRAINING),
                  StubFleet(2)]
        for request_id in range(200):
            chosen = router.route(_request(request_id), fleets)
            assert chosen.fleet_id != 1

    def test_spread_covers_all_fleets(self):
        router = Router("hash")
        fleets = [StubFleet(i) for i in range(4)]
        hit = {
            router.route(_request(rid), fleets).fleet_id
            for rid in range(400)
        }
        assert hit == {0, 1, 2, 3}


class TestLeastQueueWait:
    def test_picks_smallest_estimated_wait(self):
        router = Router("least-queue-wait")
        fleets = [StubFleet(0, wait_ms=9.0), StubFleet(1, wait_ms=2.0),
                  StubFleet(2, wait_ms=5.0)]
        assert router.route(_request(1), fleets).fleet_id == 1

    def test_tie_breaks_on_depth_then_id(self):
        router = Router("least-queue-wait")
        fleets = [StubFleet(0, wait_ms=2.0, depth=4),
                  StubFleet(1, wait_ms=2.0, depth=1),
                  StubFleet(2, wait_ms=2.0, depth=1)]
        assert router.route(_request(1), fleets).fleet_id == 1

    def test_skips_draining(self):
        router = Router("least-queue-wait")
        fleets = [StubFleet(0, wait_ms=9.0),
                  StubFleet(1, wait_ms=0.0, state=DRAINING)]
        assert router.route(_request(1), fleets).fleet_id == 0


class TestDeadlineP2C:
    def test_deterministic_under_fixed_seed(self):
        fleets = [StubFleet(i, wait_ms=float(i)) for i in range(6)]
        picks_a = [
            Router("deadline-p2c", seed=7).route(_request(rid), fleets)
            .fleet_id
            for rid in range(50)
        ]
        # Re-running with the same seed reproduces the exact sequence.
        router = Router("deadline-p2c", seed=7)
        picks_b = [
            router.route(_request(rid), fleets).fleet_id
            for rid in range(50)
        ]
        # (fresh router per call above vs one router: both draw from
        # Random(7); the first list re-seeds every call so compare a
        # same-shape second pass instead.)
        router_c = Router("deadline-p2c", seed=7)
        picks_c = [
            router_c.route(_request(rid), fleets).fleet_id
            for rid in range(50)
        ]
        assert picks_b == picks_c
        assert picks_a[0] == picks_b[0]

    def test_prefers_deadline_feasible_candidate(self):
        # Force the two candidates: with 2 fleets, p2c samples both.
        router = Router("deadline-p2c", seed=0)
        fleets = [StubFleet(0, wait_ms=50.0, depth=1),
                  StubFleet(1, wait_ms=80.0, depth=1)]
        # Deadline slack of 60ms: only fleet 0 is feasible.
        chosen = router.route(
            _request(1, arrival_ms=0.0, deadline_ms=60.0), fleets
        )
        assert chosen.fleet_id == 0
        # Infeasible for both: falls back to less-loaded.
        chosen = router.route(
            _request(2, arrival_ms=0.0, deadline_ms=10.0), fleets
        )
        assert chosen.fleet_id == 0

    def test_never_routes_to_draining_fleet(self):
        router = Router("deadline-p2c", seed=3)
        fleets = [StubFleet(0), StubFleet(1, state=DRAINING),
                  StubFleet(2), StubFleet(3)]
        for request_id in range(300):
            chosen = router.route(_request(request_id), fleets)
            assert chosen.fleet_id != 1

    def test_single_fleet_short_circuits(self):
        router = Router("deadline-p2c", seed=0)
        fleets = [StubFleet(4)]
        assert router.route(_request(1), fleets).fleet_id == 4
