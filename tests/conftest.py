"""Shared fixtures: small datasets and trained models, built once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neuroc import NeuroCConfig, train_neuroc
from repro.core.mlp import MLPConfig, train_mlp
from repro.datasets import load


@pytest.fixture(scope="session")
def digits_small():
    """A small digits_like split shared by training-dependent tests."""
    return load("digits_like", n_train=600, n_test=200, seed=3)


@pytest.fixture(scope="session")
def trained_neuroc(digits_small):
    """One trained + quantized Neuro-C model on the small digits set."""
    config = NeuroCConfig(
        n_in=64, n_out=10, hidden=(48,), threshold=0.85,
        name="test-neuroc", seed=0,
    )
    return train_neuroc(config, digits_small, epochs=35, lr=0.01)


@pytest.fixture(scope="session")
def trained_mlp(digits_small):
    """One trained + quantized MLP baseline on the small digits set."""
    config = MLPConfig(
        n_in=64, n_out=10, hidden=(24,), dropout=0.1, name="test-mlp",
        seed=0,
    )
    return train_mlp(config, digits_small, epochs=25)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
