"""The four §3.2 adjacency strategies."""

import numpy as np
import pytest

from repro.core.adjacency import (
    clustered_adjacency,
    constrained_random_adjacency,
    locality_adjacency,
    make_fixed_adjacency,
    random_adjacency,
)
from repro.errors import ConfigurationError


class TestRandom:
    def test_density_approximate(self, rng):
        matrix = random_adjacency(200, 50, density=0.1, rng=rng)
        observed = np.count_nonzero(matrix) / matrix.size
        assert observed == pytest.approx(0.1, abs=0.02)

    def test_signs_balanced(self, rng):
        matrix = random_adjacency(200, 50, density=0.3, rng=rng)
        positives = (matrix == 1).sum()
        negatives = (matrix == -1).sum()
        assert positives == pytest.approx(negatives, rel=0.15)

    def test_invalid_density(self, rng):
        with pytest.raises(ConfigurationError):
            random_adjacency(10, 10, density=0.0, rng=rng)


class TestConstrainedRandom:
    def test_exact_fan_in_per_neuron(self, rng):
        matrix = constrained_random_adjacency(100, 20, fan_in=7, rng=rng)
        assert (np.count_nonzero(matrix, axis=0) == 7).all()

    def test_fan_in_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            constrained_random_adjacency(10, 5, fan_in=11, rng=rng)
        with pytest.raises(ConfigurationError):
            constrained_random_adjacency(10, 5, fan_in=0, rng=rng)


class TestLocality:
    def test_2d_connections_within_window(self, rng):
        height = width = 8
        radius = 2
        matrix = locality_adjacency(
            64, 16, rng, image_shape=(height, width), radius=radius,
            density_in_window=1.0,
        )
        rows = np.arange(64) // width
        cols = np.arange(64) % width
        anchor_index = np.linspace(0, 63, 16)
        for j in range(16):
            connected = np.flatnonzero(matrix[:, j])
            anchor_row = anchor_index[j] // width
            anchor_col = anchor_index[j] % width
            assert (np.abs(rows[connected] - anchor_row) <= radius).all()
            assert (np.abs(cols[connected] - anchor_col) <= radius).all()

    def test_1d_window(self, rng):
        matrix = locality_adjacency(50, 10, rng, radius=3,
                                    density_in_window=1.0)
        anchors = np.linspace(0, 49, 10)
        for j in range(10):
            connected = np.flatnonzero(matrix[:, j])
            assert (np.abs(connected - anchors[j]) <= 3).all()
            assert len(connected) > 0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            locality_adjacency(64, 8, rng, image_shape=(5, 5))


class TestClustered:
    def test_target_density(self, rng):
        matrix = clustered_adjacency(784, 32, density=0.1, rng=rng)
        per_column = np.count_nonzero(matrix, axis=0)
        assert (per_column == round(0.1 * 784)).all()

    def test_clustering_reduces_gap_spread(self, rng):
        """Clustered matrices must have smaller median index gaps than
        uniform ones — that is the property §4.2's block format exploits."""
        clustered = clustered_adjacency(784, 16, 0.1, rng,
                                        cluster_span=48)
        uniform = constrained_random_adjacency(784, 16, 78, rng)

        def median_gap(matrix):
            gaps = []
            for j in range(matrix.shape[1]):
                idx = np.flatnonzero(matrix[:, j])
                if len(idx) > 1:
                    gaps.extend(np.diff(idx))
            return np.median(gaps)

        assert median_gap(clustered) < median_gap(uniform)


class TestDispatch:
    @pytest.mark.parametrize(
        "strategy", ["random", "constrained_random", "locality"]
    )
    def test_all_fixed_strategies_produce_ternary(self, strategy, rng):
        matrix = make_fixed_adjacency(
            strategy, 64, 12, rng, density=0.1, image_shape=(8, 8)
        )
        assert matrix.shape == (64, 12)
        assert set(np.unique(matrix)) <= {-1, 0, 1}
        assert np.count_nonzero(matrix) > 0

    def test_quantization_is_not_a_fixed_strategy(self, rng):
        with pytest.raises(ConfigurationError, match="trainable"):
            make_fixed_adjacency("quantization", 10, 5, rng)
