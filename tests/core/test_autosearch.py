"""Automated Neuro-C exploration: sampling, Pareto logic, tiny live run."""

import pytest

from repro.core.autosearch import (
    CandidateResult,
    pareto_frontier,
    sample_configs,
    search,
)
from repro.core.neuroc import NeuroCConfig
from repro.errors import ConfigurationError


def _candidate(acc, lat, mem, deployable=True):
    return CandidateResult(
        config=NeuroCConfig(8, 2, hidden=(4,)),
        accuracy=acc, latency_ms=lat, memory_kb=mem,
        deployable=deployable, nnz=10,
    )


class TestSampling:
    def test_deterministic_and_distinct(self):
        a = sample_configs(64, 10, count=15, seed=2)
        b = sample_configs(64, 10, count=15, seed=2)
        assert [c.hidden for c in a] == [c.hidden for c in b]
        assert len({(c.hidden, c.threshold) for c in a}) == 15

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            sample_configs(64, 10, count=0)


class TestPareto:
    def test_dominated_points_removed(self):
        good = _candidate(0.95, 10.0, 5.0)
        dominated = _candidate(0.94, 12.0, 6.0)
        incomparable = _candidate(0.97, 20.0, 9.0)
        frontier = pareto_frontier([good, dominated, incomparable])
        assert dominated not in frontier
        assert good in frontier and incomparable in frontier

    def test_identical_points_both_survive(self):
        a = _candidate(0.9, 10.0, 5.0)
        b = _candidate(0.9, 10.0, 5.0)
        assert len(pareto_frontier([a, b])) == 2  # neither dominates

    def test_frontier_sorted_by_latency(self):
        points = [_candidate(0.9, 30.0, 5.0), _candidate(0.8, 10.0, 4.0)]
        frontier = pareto_frontier(points)
        assert [p.latency_ms for p in frontier] == sorted(
            p.latency_ms for p in frontier
        )


class TestLiveSearch:
    @pytest.fixture(scope="class")
    def outcome(self, request):
        digits = request.getfixturevalue("digits_small")
        return search(digits, count=4, epochs=12, seed=0)

    def test_search_evaluates_all_candidates(self, outcome):
        assert len(outcome.all_results) == 4
        assert 1 <= len(outcome.frontier) <= 4

    def test_candidates_actually_learn(self, outcome):
        assert max(c.accuracy for c in outcome.all_results) > 0.6

    def test_budgeted_selection(self, outcome):
        tightest = min(c.latency_ms for c in outcome.all_results)
        best = outcome.best_under(max_latency_ms=tightest)
        assert best is not None
        assert best.latency_ms <= tightest
        assert outcome.best_under(max_latency_ms=1e-9) is None

    def test_parallel_jobs_match_sequential(self, outcome, request):
        # Candidates fan out over the work-unit pool: results must be
        # identical at any jobs value (the runner's determinism
        # contract, applied to the uncached autosearch units).
        digits = request.getfixturevalue("digits_small")
        parallel = search(digits, count=4, epochs=12, seed=0, jobs=2)
        assert parallel.all_results == outcome.all_results
        assert parallel.frontier == outcome.frontier
