"""Model builders, the TNN ablation, the MLP random search, and the zoo."""

import numpy as np
import pytest

from repro.core.mlp import MLPConfig, build_mlp
from repro.core.neuroc import NeuroCConfig, build_neuroc
from repro.core.search import (
    SearchRecord,
    best_deployable,
    random_mlp_configs,
    smallest_matching,
)
from repro.core.tnn import tnn_config_from
from repro.core.zoo import BEST_DEPLOYABLE, NEUROC_ZOO, zoo_entry
from repro.errors import ConfigurationError
from repro.nn.layers import (
    ActivationLayer,
    BatchNormLayer,
    DenseLayer,
    DropoutLayer,
    NeuroCLayer,
)


class TestNeuroCConfig:
    def test_layer_dims(self):
        config = NeuroCConfig(64, 10, hidden=(48, 24))
        assert config.layer_dims == (64, 48, 24, 10)

    def test_needs_hidden_layer(self):
        with pytest.raises(ConfigurationError):
            NeuroCConfig(64, 10, hidden=())

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            NeuroCConfig(64, 10, hidden=(8,), strategy="magic")

    def test_build_structure(self):
        model = build_neuroc(NeuroCConfig(64, 10, hidden=(32,)))
        kinds = [type(l).__name__ for l in model.layers]
        assert kinds == ["NeuroCLayer", "ActivationLayer", "NeuroCLayer"]
        assert all(l.use_scale for l in model.neuroc_layers())

    def test_build_tnn_variant(self):
        config = tnn_config_from(NeuroCConfig(64, 10, hidden=(32,),
                                              name="base"))
        model = build_neuroc(config)
        assert all(not l.use_scale for l in model.neuroc_layers())
        assert config.name == "base-tnn"
        # Idempotent on an already-TNN config.
        again = tnn_config_from(config)
        assert not again.use_scale

    def test_threshold_controls_sparsity(self):
        sparse = build_neuroc(
            NeuroCConfig(64, 10, hidden=(32,), threshold=0.95)
        )
        dense = build_neuroc(
            NeuroCConfig(64, 10, hidden=(32,), threshold=0.5)
        )
        assert (
            sparse.neuroc_layers()[0].sparsity
            > dense.neuroc_layers()[0].sparsity
        )

    def test_fixed_strategy_builds_supported_layers(self):
        config = NeuroCConfig(
            64, 10, hidden=(16,), strategy="locality", image_shape=(8, 8)
        )
        model = build_neuroc(config)
        first = model.neuroc_layers()[0]
        assert first.support is not None
        assert first.latent is not None  # signs still learn

    def test_deterministic_under_seed(self):
        a = build_neuroc(NeuroCConfig(64, 10, hidden=(16,), seed=3))
        b = build_neuroc(NeuroCConfig(64, 10, hidden=(16,), seed=3))
        assert np.array_equal(
            a.neuroc_layers()[0].latent.value,
            b.neuroc_layers()[0].latent.value,
        )


class TestMLPConfig:
    def test_parameter_count(self):
        config = MLPConfig(64, 10, hidden=(32,))
        assert config.parameter_count == 64 * 32 + 32 + 32 * 10 + 10

    def test_build_with_all_options(self):
        config = MLPConfig(64, 10, hidden=(16, 8), dropout=0.2,
                           batch_norm=True)
        model = build_mlp(config)
        kinds = [type(l) for l in model.layers]
        assert kinds.count(DenseLayer) == 3
        assert kinds.count(BatchNormLayer) == 2
        assert kinds.count(DropoutLayer) == 2
        assert kinds.count(ActivationLayer) == 2

    def test_invalid_dropout(self):
        with pytest.raises(ConfigurationError):
            MLPConfig(64, 10, hidden=(8,), dropout=1.5)


class TestRandomSearch:
    def test_sampling_is_deterministic(self):
        a = random_mlp_configs(784, 10, count=20, seed=4)
        b = random_mlp_configs(784, 10, count=20, seed=4)
        assert [c.hidden for c in a] == [c.hidden for c in b]

    def test_configs_are_distinct(self):
        configs = random_mlp_configs(784, 10, count=30, seed=0)
        keys = {(c.hidden, c.dropout, c.batch_norm) for c in configs}
        assert len(keys) == len(configs)

    def test_space_covers_paper_axes(self):
        configs = random_mlp_configs(784, 10, count=50, seed=0)
        assert any(len(c.hidden) > 1 for c in configs)     # depth varies
        assert any(c.dropout > 0 for c in configs)
        assert any(c.batch_norm for c in configs)
        assert any(not c.batch_norm for c in configs)


def _record(accuracy, params, deployable=True):
    return SearchRecord(
        config=MLPConfig(8, 2, hidden=(4,)),
        accuracy=accuracy,
        parameter_count=params,
        program_memory_kb=params / 1024,
        latency_ms=params / 1000,
        deployable=deployable,
        trained=None,
    )


class TestSelectionRules:
    def test_smallest_matching_picks_minimum_params(self):
        records = [_record(0.97, 30_000), _record(0.98, 20_000),
                   _record(0.99, 90_000)]
        chosen = smallest_matching(records, target_accuracy=0.975)
        assert chosen.parameter_count == 20_000

    def test_smallest_matching_respects_deployability(self):
        records = [_record(0.99, 10_000, deployable=False),
                   _record(0.99, 50_000, deployable=True)]
        chosen = smallest_matching(records, 0.985)
        assert chosen.parameter_count == 50_000
        any_fit = smallest_matching(records, 0.985,
                                    require_deployable=False)
        assert any_fit.parameter_count == 10_000

    def test_smallest_matching_none_when_unreachable(self):
        assert smallest_matching([_record(0.9, 100)], 0.95) is None

    def test_best_deployable(self):
        records = [_record(0.99, 10, deployable=False),
                   _record(0.95, 20), _record(0.97, 30)]
        assert best_deployable(records).accuracy == 0.97
        assert best_deployable(
            [_record(0.9, 1, deployable=False)]
        ) is None


class TestZoo:
    def test_entries_cover_figures(self):
        assert {"mnist-small", "mnist-medium", "mnist-large"} <= set(
            NEUROC_ZOO
        )
        assert set(BEST_DEPLOYABLE.values()) <= set(NEUROC_ZOO)

    def test_mnist_tiers_grow_monotonically(self):
        sizes = [
            sum(zoo_entry(f"mnist-{t}").config.hidden)
            for t in ("small", "medium", "large")
        ]
        assert sizes == sorted(sizes)

    def test_unknown_entry(self):
        with pytest.raises(ConfigurationError):
            zoo_entry("mnist-gigantic")

    def test_configs_are_buildable(self):
        for entry in NEUROC_ZOO.values():
            model = build_neuroc(entry.config)
            assert isinstance(model.layers[0], NeuroCLayer)
