"""Dataset generators: shapes, determinism, balance, difficulty ordering."""

import numpy as np
import pytest

from repro.datasets import (
    EVALUATION_DATASETS,
    Dataset,
    dataset_names,
    load,
)
from repro.errors import ConfigurationError

SMALL = {"n_train": 200, "n_test": 60}


class TestRegistry:
    def test_all_four_registered(self):
        assert set(dataset_names()) == {
            "digits_like", "mnist_like", "fashion_like", "cifar5_like"
        }

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            load("imagenet")

    def test_memoization_returns_same_object(self):
        a = load("digits_like", **SMALL, seed=5)
        b = load("digits_like", **SMALL, seed=5)
        assert a is b

    def test_evaluation_datasets_are_the_paper_trio(self):
        assert EVALUATION_DATASETS == (
            "mnist_like", "fashion_like", "cifar5_like"
        )


@pytest.mark.parametrize(
    "name,features,classes,shape",
    [
        ("digits_like", 64, 10, (8, 8)),
        ("mnist_like", 784, 10, (28, 28)),
        ("fashion_like", 784, 10, (28, 28)),
        ("cifar5_like", 3072, 5, (32, 32, 3)),
    ],
)
class TestGeneratorContracts:
    def test_shapes_and_metadata(self, name, features, classes, shape):
        ds = load(name, **SMALL, seed=1)
        assert ds.num_features == features
        assert ds.num_classes == classes
        assert ds.image_shape == shape
        assert ds.x_train.shape == (SMALL["n_train"], features)
        assert ds.x_test.shape == (SMALL["n_test"], features)
        assert ds.x_train.dtype == np.float32

    def test_values_in_unit_range(self, name, features, classes, shape):
        ds = load(name, **SMALL, seed=1)
        assert float(ds.x_train.min()) >= 0.0
        assert float(ds.x_train.max()) <= 1.0

    def test_deterministic_under_seed(self, name, features, classes, shape):
        a = load(name, n_train=40, n_test=10, seed=7)
        b_fn = {
            "digits_like": "make_digits_like",
            "mnist_like": "make_mnist_like",
            "fashion_like": "make_fashion_like",
            "cifar5_like": "make_cifar5_like",
        }[name]
        import repro.datasets as d
        b = getattr(d, b_fn)(n_train=40, n_test=10, seed=7)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self, name, features, classes, shape):
        a = load(name, n_train=30, n_test=10, seed=1)
        b = load(name, n_train=30, n_test=10, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_prefixes_are_class_balanced(self, name, features, classes,
                                         shape):
        ds = load(name, **SMALL, seed=1)
        counts = np.bincount(ds.y_train[: classes * 4],
                             minlength=classes)
        assert (counts == 4).all()

    def test_classes_are_separable_by_centroids(
        self, name, features, classes, shape
    ):
        # A trivially weak classifier must still beat chance by a wide
        # margin, or the dataset carries no class signal.
        ds = load(name, n_train=400, n_test=100, seed=1)
        centroids = np.stack(
            [
                ds.x_train[ds.y_train == c].mean(axis=0)
                for c in range(classes)
            ]
        )
        distances = (
            ((ds.x_test[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        )
        predictions = distances.argmin(axis=1)
        assert (predictions == ds.y_test).mean() > 2.0 / classes


class TestDatasetContainer:
    def test_validation_split_partitions(self):
        ds = load("digits_like", **SMALL, seed=1)
        x_tr, y_tr, x_val, y_val = ds.split_validation(0.25, seed=0)
        assert len(x_tr) + len(x_val) == len(ds.x_train)
        assert len(x_val) == int(len(ds.x_train) * 0.25)
        assert len(x_tr) == len(y_tr)

    def test_validation_split_is_deterministic(self):
        ds = load("digits_like", **SMALL, seed=1)
        a = ds.split_validation(0.2, seed=3)
        b = ds.split_validation(0.2, seed=3)
        assert np.array_equal(a[0], b[0])

    def test_invalid_fraction(self):
        ds = load("digits_like", **SMALL, seed=1)
        with pytest.raises(ConfigurationError):
            ds.split_validation(0.0)

    def test_subset(self):
        ds = load("digits_like", **SMALL, seed=1)
        sub = ds.subset(50, 20)
        assert len(sub.x_train) == 50
        assert len(sub.x_test) == 20

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(
                name="bad",
                x_train=np.zeros((3, 4), np.float32),
                y_train=np.zeros(2, np.int64),
                x_test=np.zeros((1, 4), np.float32),
                y_test=np.zeros(1, np.int64),
                num_classes=2,
                image_shape=(2, 2),
            )


def test_difficulty_ordering_matches_paper():
    """mnist < fashion < cifar5 in difficulty, measured by one fixed small
    trained classifier, chance-normalized across class counts."""
    from repro.nn import (
        ActivationLayer, Adam, DenseLayer, Sequential, TrainConfig, Trainer,
    )

    scores = {}
    for name in EVALUATION_DATASETS:
        ds = load(name, n_train=800, n_test=200, seed=2)
        x_tr, y_tr, x_val, y_val = ds.split_validation(seed=0)
        rng = np.random.default_rng(0)
        model = Sequential(
            [DenseLayer(ds.num_features, 16, rng), ActivationLayer("relu"),
             DenseLayer(16, ds.num_classes, rng)]
        )
        Trainer(model, Adam(0.003), rng=np.random.default_rng(1)).fit(
            x_tr, y_tr, x_val, y_val, TrainConfig(epochs=12)
        )
        raw = model.accuracy(ds.x_test, ds.y_test)
        scores[name] = (raw - 1 / ds.num_classes) / (1 - 1 / ds.num_classes)
    assert scores["mnist_like"] > scores["fashion_like"]
    assert scores["fashion_like"] > scores["cifar5_like"]
