"""C code generation: structure checks plus a compile-and-run round trip."""

import shutil
import subprocess

import numpy as np
import pytest

from repro.deploy.cgen import generate_c_source
from repro.errors import ConfigurationError
from repro.kernels.ref import model_forward
from repro.kernels.spec import make_dense_spec

HAVE_GCC = shutil.which("gcc") is not None


class TestSourceStructure:
    def test_contains_entry_point_and_layers(self, trained_neuroc):
        source = generate_c_source(trained_neuroc.quantized)
        assert "void neuroc_infer(" in source
        assert "static void layer0(" in source
        assert "#include <stdint.h>" in source

    def test_static_arrays_are_const(self, trained_neuroc):
        source = generate_c_source(trained_neuroc.quantized)
        assert "static const" in source
        assert "malloc" not in source     # §4.1: static allocation only

    def test_fixed_loop_bounds(self, trained_neuroc):
        source = generate_c_source(trained_neuroc.quantized)
        n_out = trained_neuroc.quantized.specs[0].n_out
        assert f"j < {n_out}" in source   # literal bound, not a variable

    def test_test_main_optional(self, trained_neuroc):
        assert "int main" not in generate_c_source(trained_neuroc.quantized)
        assert "int main" in generate_c_source(
            trained_neuroc.quantized, with_test_main=True
        )

    def test_dense_models_rejected(self, rng):
        from repro.quantize.ptq import QuantizedModel
        spec = make_dense_spec(
            rng.integers(-5, 5, (4, 2)).astype(np.int8),
            np.zeros(2, np.int32), mult=None, act_out_width=4, relu=False,
        )
        model = QuantizedModel([spec], input_scale=1 / 127, act_width=1)
        with pytest.raises(ConfigurationError):
            generate_c_source(model)


@pytest.mark.skipif(not HAVE_GCC, reason="no host C compiler")
class TestCompileRoundTrip:
    def test_compiled_c_matches_reference_bitexactly(
        self, trained_neuroc, digits_small, tmp_path
    ):
        quantized = trained_neuroc.quantized
        source = generate_c_source(quantized, with_test_main=True)
        c_file = tmp_path / "model.c"
        c_file.write_text(source)
        binary = tmp_path / "model"
        subprocess.run(
            ["gcc", "-std=c99", "-Wall", "-Werror", "-O2",
             "-o", str(binary), str(c_file)],
            check=True, capture_output=True,
        )
        for row in digits_small.x_test[:5]:
            x_int = quantized.quantize_input(row)
            out = subprocess.run(
                [str(binary)],
                input=" ".join(str(int(v)) for v in x_int),
                capture_output=True, text=True, check=True,
            )
            c_logits = np.array([int(v) for v in out.stdout.split()])
            expected = model_forward(quantized.specs, x_int)
            assert np.array_equal(c_logits, expected)
