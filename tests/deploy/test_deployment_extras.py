"""Cross-cutting deployment properties: boards, formats, RAM accounting."""

import numpy as np

from repro.deploy.artifact import DeployedModel, analytic_model_cycles
from repro.mcu.board import CORTEX_M4_REFERENCE, STM32F072RB


class TestCrossBoard:
    def test_faster_clock_means_lower_latency_same_cycles(
        self, trained_neuroc
    ):
        m0_cycles = analytic_model_cycles(
            trained_neuroc.quantized, "block", STM32F072RB
        )
        m0_ms = STM32F072RB.cycles_to_ms(m0_cycles)
        m4_cycles = analytic_model_cycles(
            trained_neuroc.quantized, "block", CORTEX_M4_REFERENCE
        )
        m4_ms = CORTEX_M4_REFERENCE.cycles_to_ms(m4_cycles)
        # The M4 profile pays flash wait states (more cycles) but its
        # 15x clock wins by far.
        assert m4_cycles > m0_cycles
        assert m4_ms < m0_ms

    def test_wait_states_charged_per_instruction(self, trained_neuroc):
        from repro.kernels.codegen_sparse import count_sparse
        spec = trained_neuroc.quantized.specs[0]
        count = count_sparse(spec, "block")
        delta = count.cycles(CORTEX_M4_REFERENCE.costs) - count.cycles(
            STM32F072RB.costs
        )
        assert delta == count.instructions  # fetch_extra = 1


class TestFormatChoice:
    def test_block_format_minimizes_flash_on_wide_models(
        self, trained_neuroc
    ):
        from repro.deploy.size import model_program_memory
        sizes = {
            fmt: model_program_memory(
                trained_neuroc.quantized.specs, format_name=fmt
            ).rodata_bytes
            for fmt in ("csc", "delta", "mixed", "block")
        }
        assert sizes["block"] <= min(sizes["csc"], sizes["mixed"])

    def test_every_format_is_deployable_for_the_zoo_scale(
        self, trained_neuroc
    ):
        for fmt in ("csc", "delta", "mixed", "block"):
            deployed = DeployedModel(trained_neuroc.quantized, fmt)
            assert deployed.flash_data_bytes < STM32F072RB.flash_bytes


class TestRamAccounting:
    def test_activation_buffers_ping_pong(self, trained_neuroc,
                                          digits_small):
        deployed = DeployedModel(trained_neuroc.quantized, "mixed")
        # Layer 0 reads buffer A and writes buffer B; layer 1 reads B.
        first, second = deployed.images[0], deployed.images[1]
        assert first.output_addr == second.input_addr
        assert first.input_addr != first.output_addr

    def test_inference_is_repeatable_in_place(self, trained_neuroc,
                                              digits_small):
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        x = digits_small.x_test[0]
        first = deployed.infer(x)
        second = deployed.infer(x)
        assert np.array_equal(first.logits, second.logits)
        assert first.cycles == second.cycles

    def test_distinct_inputs_can_yield_distinct_labels(
        self, trained_neuroc, digits_small
    ):
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        labels = {
            deployed.infer(row).label for row in digits_small.x_test[:20]
        }
        assert len(labels) > 1
