"""Typed input validation on the deployed-model inference API.

ISSUE-2 satellite: ``infer()``/``predict()`` must reject malformed
inputs up front with :class:`~repro.errors.InvalidInputError` instead of
surfacing a raw numpy failure from deep inside the memory map, and
``predict(vectorized=True)`` must agree bit-for-bit with the on-device
path.
"""

import numpy as np
import pytest

from repro.deploy.deployer import deploy
from repro.errors import InvalidInputError


@pytest.fixture(scope="module")
def deployed(trained_neuroc):
    return deploy(trained_neuroc.quantized).model


class TestInferValidation:
    def test_wrong_feature_count(self, deployed):
        with pytest.raises(InvalidInputError, match="features"):
            deployed.infer(np.zeros(17, dtype=np.float32))

    def test_non_numeric_dtype(self, deployed):
        with pytest.raises(InvalidInputError, match="dtype"):
            deployed.infer(np.array(["a"] * 64))

    def test_nan_rejected(self, deployed):
        x = np.zeros(64, dtype=np.float32)
        x[3] = np.nan
        with pytest.raises(InvalidInputError, match="NaN"):
            deployed.infer(x)

    def test_infinity_rejected(self, deployed):
        x = np.zeros(64, dtype=np.float32)
        x[0] = np.inf
        with pytest.raises(InvalidInputError):
            deployed.infer(x)

    def test_image_shaped_input_still_accepted(self, deployed,
                                               digits_small):
        flat = digits_small.x_test[0]
        image = flat.reshape(8, 8)
        assert deployed.infer(image).label == deployed.infer(flat).label


class TestPredictValidation:
    def test_batch_wrong_width(self, deployed):
        with pytest.raises(InvalidInputError, match="batch"):
            deployed.predict(np.zeros((4, 63), dtype=np.float32))

    def test_batch_must_be_2d(self, deployed):
        with pytest.raises(InvalidInputError):
            deployed.predict(np.zeros(64, dtype=np.float32))


class TestVectorizedFastPath:
    def test_matches_on_device_path(self, deployed, digits_small):
        x = digits_small.x_test[:16]
        fast = deployed.predict(x, vectorized=True)
        slow = deployed.predict(x)
        assert np.array_equal(fast, slow)

    def test_accuracy_paths_agree(self, deployed, digits_small):
        x, y = digits_small.x_test[:16], digits_small.y_test[:16]
        assert deployed.accuracy(x, y, vectorized=True) == \
            deployed.accuracy(x, y)
