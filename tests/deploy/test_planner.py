"""SLO-driven deployment planning (ISSUE-9 tentpole acceptance).

The planner must demonstrably choose *different* (encoding, engine,
board) tuples for tight-latency vs tight-flash SLOs, admit candidates
through the ceiling cycle budget, and reject infeasible SLOs with the
full search table.
"""

import pytest

from repro.deploy import DeploySLO, plan_deployment
from repro.errors import BudgetExceededError, ConfigurationError
from repro.kernels.codegen_sparse import SPARSE_FORMATS
from repro.mcu.board import BOARD_PROFILES, STM32F072RB


class TestPlanSpace:
    def test_considers_every_encoding_on_every_board(self, trained_neuroc):
        plan = plan_deployment(trained_neuroc.quantized, verify=False)
        assert len(plan.considered) == (
            len(BOARD_PROFILES) * len(SPARSE_FORMATS)
        )
        seen = {c.choice for c in plan.considered}
        assert len(seen) == len(plan.considered)

    def test_candidates_are_priced_with_board_cost_tables(
        self, trained_neuroc
    ):
        plan = plan_deployment(trained_neuroc.quantized, verify=False)
        by_board = {}
        for c in plan.considered:
            by_board.setdefault(c.board.name, set()).add(c.cycles)
        # Same program, different wait-state models: totals differ
        # between the M0 and the M4 (fetch_extra=1) for every encoding.
        assert by_board["STM32F072RB"].isdisjoint(by_board["Kinetis-K64F"])

    def test_empty_plan_space_is_typed(self, trained_neuroc):
        with pytest.raises(ConfigurationError):
            plan_deployment(trained_neuroc.quantized, boards=[])
        with pytest.raises(ConfigurationError):
            DeploySLO(max_latency_ms=-1.0)


class TestSLOObjectives:
    def test_tight_latency_and_tight_flash_choose_differently(
        self, trained_neuroc
    ):
        """The acceptance criterion: a tight deadline buys the fast
        Cortex-M7; a tight flash budget forces the small M0."""
        quantized = trained_neuroc.quantized
        tight_latency = plan_deployment(
            quantized, DeploySLO(max_latency_ms=0.05), verify=False
        )
        tight_flash = plan_deployment(
            quantized, DeploySLO(max_flash_kb=STM32F072RB.flash_kb),
            verify=False,
        )
        assert tight_latency.chosen.choice != tight_flash.chosen.choice
        assert tight_latency.chosen.board.name == "STM32H747XI"
        assert tight_flash.chosen.board.name == "STM32F072RB"

    def test_loose_latency_slo_prefers_the_small_board(self, trained_neuroc):
        # A deadline the 8 MHz M0 can make should not buy an M7.
        plan = plan_deployment(
            trained_neuroc.quantized, DeploySLO(max_latency_ms=5.0),
            verify=False,
        )
        assert plan.chosen.board.name == "STM32F072RB"

    def test_latency_admission_uses_the_ceiling_budget(self, trained_neuroc):
        """ISSUE-9 satellite boundary: an SLO exactly equal to a
        candidate's latency admits it — the ceiling budget covers the
        final partial cycle that banker's rounding used to drop."""
        probe = plan_deployment(trained_neuroc.quantized, verify=False)
        fastest = min(probe.considered, key=lambda c: c.latency_ms)
        exact = plan_deployment(
            trained_neuroc.quantized,
            DeploySLO(max_latency_ms=fastest.latency_ms),
            verify=False,
        )
        assert exact.chosen.cycles == fastest.cycles
        board = fastest.board
        assert board.ms_to_cycles(fastest.latency_ms) >= fastest.cycles

    def test_infeasible_slo_reports_the_rejection_table(
        self, trained_neuroc
    ):
        with pytest.raises(BudgetExceededError, match="no .* candidate"):
            plan_deployment(
                trained_neuroc.quantized,
                DeploySLO(max_latency_ms=1e-6),
                verify=False,
            )

    def test_chosen_deployment_is_built_and_consistent(self, trained_neuroc):
        plan = plan_deployment(
            trained_neuroc.quantized, DeploySLO(max_latency_ms=5.0),
            verify=False,
        )
        deployment = plan.deployment
        assert deployment.deployable
        assert deployment.board is plan.chosen.board
        assert deployment.format_name == plan.chosen.format_name
        assert deployment.model.engine == plan.chosen.engine
        assert deployment.latency_ms == pytest.approx(
            plan.chosen.latency_ms
        )


class TestCatalogPlanning:
    """plan_from_catalog: SLO admission over search-frontier rows."""

    @staticmethod
    def entry(key, board, accuracy, cycles, flash_kb):
        return {
            "key": key, "board": board, "accuracy": accuracy,
            "cycles": cycles, "flash_kb": flash_kb,
            "latency_ms": 0.0, "nnz": 100, "spec": {},
        }

    @pytest.fixture()
    def catalog(self):
        return [
            self.entry("small", "STM32F072RB", 0.82, 10_000, 4.0),
            self.entry("big", "STM32F072RB", 0.95, 60_000, 20.0),
            self.entry("fast", "STM32H747XI", 0.91, 6_000, 12.0),
        ]

    def test_unconstrained_picks_highest_accuracy(self, catalog):
        from repro.deploy import plan_from_catalog

        plan = plan_from_catalog(catalog)
        assert plan.chosen.key == "big"
        assert len(plan.feasible) == 3

    def test_latency_slo_filters_by_ceiling_cycle_budget(self, catalog):
        from repro.deploy import plan_from_catalog
        from repro.mcu.board import board_by_name

        f072 = board_by_name("STM32F072RB")
        # A budget that admits 10k cycles on the F072 but not 60k.
        budget_ms = 20_000 / f072.ms_to_cycles(1.0)
        plan = plan_from_catalog(
            catalog, DeploySLO(max_latency_ms=budget_ms)
        )
        rejected = {c.key for c in plan.considered if not c.feasible}
        assert "big" in rejected
        # The H7 entry clears the same wall-clock budget easily.
        assert plan.chosen.key in ("fast", "small")
        assert plan.chosen.accuracy == max(
            c.accuracy for c in plan.feasible
        )

    def test_flash_slo_caps_the_device_class(self, catalog):
        from repro.deploy import plan_from_catalog

        plan = plan_from_catalog(
            catalog, DeploySLO(max_flash_kb=STM32F072RB.flash_kb)
        )
        # The H7 carries more flash than the device budget allows.
        assert all(
            c.board.name != "STM32H747XI" for c in plan.feasible
        )
        assert plan.chosen.key == "big"

    def test_program_over_board_flash_is_rejected(self):
        from repro.deploy import plan_from_catalog

        oversized = [
            self.entry("huge", "STM32F072RB", 0.99, 1_000,
                       STM32F072RB.flash_kb + 1.0),
            self.entry("fits", "STM32F072RB", 0.5, 1_000, 4.0),
        ]
        plan = plan_from_catalog(oversized)
        assert plan.chosen.key == "fits"

    def test_impossible_slo_raises_with_table(self, catalog):
        from repro.deploy import plan_from_catalog

        with pytest.raises(BudgetExceededError, match="no catalog model"):
            plan_from_catalog(catalog, DeploySLO(max_latency_ms=1e-6))

    def test_empty_catalog_is_a_configuration_error(self):
        from repro.deploy import plan_from_catalog

        with pytest.raises(ConfigurationError):
            plan_from_catalog([])
