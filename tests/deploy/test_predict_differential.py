"""Differential check: vectorized batch inference vs the device path.

``predict(vectorized=True)`` bypasses the interpreted per-row kernels
for the vectorized reference backend; the two must agree bit-for-bit on
every sparse encoding (the generated kernels differ per format, the
semantics must not) and on dense layers.  Logits are compared too, not
just argmax labels — a near-miss in the accumulator path can leave
labels intact on easy rows while still being wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.deploy.artifact import DeployedModel
from repro.kernels.codegen_sparse import SPARSE_FORMATS

BATCH = 24


@pytest.fixture(scope="module")
def batch(digits_small):
    return digits_small.x_test[:BATCH]


def _deployed_per_format(trained, format_name):
    return DeployedModel(trained.quantized, format_name=format_name)


class TestSparseEncodings:
    @pytest.mark.parametrize("format_name", SPARSE_FORMATS)
    def test_labels_agree(self, trained_neuroc, batch, format_name):
        model = _deployed_per_format(trained_neuroc, format_name)
        fast = model.predict(batch, vectorized=True)
        slow = model.predict(batch)
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("format_name", SPARSE_FORMATS)
    def test_logits_agree(self, trained_neuroc, batch, format_name):
        model = _deployed_per_format(trained_neuroc, format_name)
        reference = model.quantized.forward(batch)
        device = np.stack(
            [model.infer(row).logits for row in batch]
        )
        assert np.array_equal(device, reference)


class TestDenseLayers:
    def test_labels_agree(self, trained_mlp, batch):
        model = DeployedModel(trained_mlp.quantized)
        fast = model.predict(batch, vectorized=True)
        slow = model.predict(batch)
        assert np.array_equal(fast, slow)

    def test_logits_agree(self, trained_mlp, batch):
        model = DeployedModel(trained_mlp.quantized)
        reference = model.quantized.forward(batch)
        device = np.stack(
            [model.infer(row).logits for row in batch]
        )
        assert np.array_equal(device, reference)
