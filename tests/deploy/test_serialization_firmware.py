"""Model persistence and firmware-image packing."""

import numpy as np
import pytest

from repro.deploy.artifact import DeployedModel
from repro.deploy.firmware import (
    HEADER_BYTES,
    FirmwareImage,
    pack_firmware_image,
    verify_firmware_image,
)
from repro.deploy.serialization import (
    FORMAT_VERSION,
    load_quantized_model,
    save_quantized_model,
)
from repro.errors import ConfigurationError


class TestSerialization:
    def test_roundtrip_preserves_predictions(self, trained_neuroc,
                                             digits_small, tmp_path):
        model = trained_neuroc.quantized
        path = save_quantized_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        loaded = load_quantized_model(path)
        x = digits_small.x_test[:30]
        assert np.array_equal(loaded.predict(x), model.predict(x))
        assert loaded.input_scale == model.input_scale
        assert loaded.act_width == model.act_width

    def test_roundtrip_preserves_specs_exactly(self, trained_neuroc,
                                               tmp_path):
        model = trained_neuroc.quantized
        loaded = load_quantized_model(
            save_quantized_model(model, tmp_path / "m.npz")
        )
        for original, restored in zip(model.specs, loaded.specs):
            assert np.array_equal(original.adjacency, restored.adjacency)
            assert np.array_equal(original.bias, restored.bias)
            assert original.shift == restored.shift
            assert original.relu == restored.relu
            if isinstance(original.mult, np.ndarray):
                assert np.array_equal(original.mult, restored.mult)
            else:
                assert original.mult == restored.mult

    def test_dense_models_roundtrip_too(self, trained_mlp, digits_small,
                                        tmp_path):
        model = trained_mlp.quantized
        loaded = load_quantized_model(
            save_quantized_model(model, tmp_path / "mlp")
        )
        x = digits_small.x_test[:20]
        assert np.array_equal(loaded.predict(x), model.predict(x))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no model file"):
            load_quantized_model(tmp_path / "nope.npz")

    def test_non_model_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ConfigurationError, match="not a Neuro-C"):
            load_quantized_model(path)

    def test_wrong_version_rejected(self, trained_neuroc, tmp_path):
        path = save_quantized_model(trained_neuroc.quantized,
                                    tmp_path / "m")
        with np.load(path) as data:
            arrays = dict(data)
        arrays["__meta__"] = np.array(
            [FORMAT_VERSION + 1, len(trained_neuroc.quantized.specs), 1],
            dtype=np.int32,
        )
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError, match="format"):
            load_quantized_model(path)

    def test_truncated_file_rejected(self, trained_neuroc, tmp_path):
        path = save_quantized_model(trained_neuroc.quantized,
                                    tmp_path / "m")
        with np.load(path) as data:
            arrays = {
                k: v for k, v in data.items()
                if not k.startswith("layer1_")
            }
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError, match="truncated"):
            load_quantized_model(path)


class TestFirmware:
    @pytest.fixture(scope="class")
    def image(self, trained_neuroc) -> FirmwareImage:
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        return pack_firmware_image(deployed)

    def test_sizes_match_deployment_accounting(self, image,
                                               trained_neuroc):
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        assert image.text_bytes == deployed.text_bytes
        assert image.data_bytes >= deployed.flash_data_bytes
        assert image.n_layers == len(deployed.images)
        assert image.total_bytes == (
            HEADER_BYTES + image.text_bytes + image.data_bytes
        )

    def test_verification_accepts_intact_image(self, image):
        info = verify_firmware_image(image.blob)
        assert info.crc_ok
        assert info.text_bytes == image.text_bytes
        assert info.n_layers == image.n_layers

    def test_bitflip_detected_by_crc(self, image):
        corrupted = bytearray(image.blob)
        corrupted[HEADER_BYTES + 5] ^= 0x40
        info = verify_firmware_image(bytes(corrupted))
        assert not info.crc_ok

    def test_header_tamper_rejected(self, image):
        bad_magic = b"XXXX" + image.blob[4:]
        with pytest.raises(ConfigurationError, match="magic"):
            verify_firmware_image(bad_magic)
        truncated = image.blob[: HEADER_BYTES - 4]
        with pytest.raises(ConfigurationError, match="header"):
            verify_firmware_image(truncated)
        bad_size = (
            image.blob[:4]
            + (999).to_bytes(4, "little")
            + image.blob[8:]
        )
        with pytest.raises(ConfigurationError, match="size"):
            verify_firmware_image(bad_size)

    def test_packing_is_deterministic(self, trained_neuroc):
        a = pack_firmware_image(
            DeployedModel(trained_neuroc.quantized, "block")
        )
        b = pack_firmware_image(
            DeployedModel(trained_neuroc.quantized, "block")
        )
        assert a.blob == b.blob
