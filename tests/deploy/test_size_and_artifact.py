"""Program-memory model, deployed artifact, and the deploy() entry point."""

import numpy as np
import pytest

from repro.deploy.artifact import (
    DeployedModel,
    analytic_model_cycles,
    analytic_model_latency_ms,
)
from repro.deploy.deployer import deploy
from repro.deploy.size import (
    STARTUP_TEXT_BYTES,
    ProgramMemoryReport,
    layer_program_memory,
    mlp_rodata_estimate,
    model_program_memory,
)
from repro.errors import BudgetExceededError
from repro.kernels.spec import make_dense_spec, make_neuroc_spec
from repro.mcu.board import STM32F072RB


class TestProgramMemoryReport:
    def test_total_includes_startup(self):
        report = ProgramMemoryReport(text_bytes=100, rodata_bytes=200)
        assert report.total_bytes == 300 + STARTUP_TEXT_BYTES

    def test_fits_boundary(self):
        limit = STM32F072RB.flash_bytes
        just_fits = ProgramMemoryReport(
            text_bytes=0, rodata_bytes=limit - STARTUP_TEXT_BYTES
        )
        assert just_fits.fits(STM32F072RB)
        too_big = ProgramMemoryReport(
            text_bytes=1, rodata_bytes=limit - STARTUP_TEXT_BYTES
        )
        assert not too_big.fits(STM32F072RB)

    def test_addition_counts_startup_once(self):
        a = ProgramMemoryReport(10, 20)
        b = ProgramMemoryReport(30, 40)
        combined = a + b
        assert combined.total_bytes == 100 + STARTUP_TEXT_BYTES


class TestLayerProgramMemory:
    def _spec(self, rng, n_in=50, n_out=8):
        adjacency = rng.choice(
            [-1, 0, 1], (n_in, n_out), p=[0.1, 0.8, 0.1]
        ).astype(np.int8)
        return make_neuroc_spec(
            adjacency, rng.integers(-10, 10, n_out).astype(np.int32),
            rng.integers(20, 90, n_out).astype(np.int16), shift=8,
        )

    def test_rodata_matches_encoding_plus_tables(self, rng):
        spec = self._spec(rng)
        from repro.kernels.codegen_sparse import encode_for_kernel
        report = layer_program_memory(spec, "mixed")
        expected = (
            encode_for_kernel(spec, "mixed").size_bytes()
            + 4 * spec.n_out   # bias
            + 2 * spec.n_out   # per-neuron mult
        )
        # The linker-style allocator may add a few alignment-padding bytes.
        assert expected <= report.rodata_bytes <= expected + 16

    def test_block_format_is_smaller_than_csc_on_wide_input(self, rng):
        spec = self._spec(rng, n_in=500, n_out=16)
        block = layer_program_memory(spec, "block")
        csc = layer_program_memory(spec, "csc")
        assert block.rodata_bytes < csc.rodata_bytes

    def test_oversized_model_can_still_be_sized(self, rng):
        # The Figure 6a requirement: sizing must work beyond 128 KB.
        weights = rng.integers(-50, 50, (784, 400)).astype(np.int8)
        spec = make_dense_spec(
            weights, rng.integers(-5, 5, 400).astype(np.int32),
            mult=None, act_out_width=4, relu=False,
        )
        report = model_program_memory([spec])
        assert report.total_kb > 128
        assert not report.fits(STM32F072RB)

    def test_mlp_rodata_estimate(self):
        assert mlp_rodata_estimate([784, 32, 10]) == (
            784 * 32 + 4 * 32 + 32 * 10 + 4 * 10
        )


@pytest.mark.usefixtures("trained_neuroc")
class TestDeployedModel:
    def test_simulated_accuracy_matches_reference(self, trained_neuroc,
                                                  digits_small):
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        x, y = digits_small.x_test[:40], digits_small.y_test[:40]
        assert deployed.accuracy(x, y) == trained_neuroc.quantized.accuracy(
            x, y
        )

    def test_measured_cycles_equal_analytic(self, trained_neuroc,
                                            digits_small):
        for fmt in ("csc", "delta", "mixed", "block"):
            deployed = DeployedModel(trained_neuroc.quantized, fmt)
            result = deployed.infer(digits_small.x_test[0])
            analytic = analytic_model_cycles(trained_neuroc.quantized, fmt)
            assert result.cycles == analytic, fmt

    def test_latency_uses_board_clock(self, trained_neuroc, digits_small):
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        result = deployed.infer(digits_small.x_test[0])
        assert result.latency_ms == pytest.approx(
            STM32F072RB.cycles_to_ms(result.cycles)
        )
        assert result.latency_ms == pytest.approx(
            analytic_model_latency_ms(trained_neuroc.quantized, "block")
        )

    def test_flash_and_text_accounting(self, trained_neuroc):
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        report = model_program_memory(trained_neuroc.quantized.specs,
                                      format_name="block")
        assert deployed.flash_data_bytes == report.rodata_bytes
        assert deployed.text_bytes == report.text_bytes


class TestDeploy:
    def test_deploy_fitting_model(self, trained_neuroc):
        deployment = deploy(trained_neuroc.quantized, "block")
        assert deployment.deployable
        assert deployment.model is not None
        assert deployment.latency_ms > 0

    def test_deploy_oversized_model_reports_without_artifact(self, rng):
        from repro.quantize.ptq import QuantizedModel
        weights = rng.integers(-50, 50, (784, 400)).astype(np.int8)
        spec = make_dense_spec(
            weights, rng.integers(-5, 5, 400).astype(np.int32),
            mult=None, act_out_width=4, relu=False,
        )
        oversized = QuantizedModel(specs=[spec], input_scale=1 / 127,
                                   act_width=1)
        deployment = deploy(oversized)
        assert not deployment.deployable
        assert deployment.model is None
        with pytest.raises(BudgetExceededError):
            deploy(oversized, require_fit=True)
