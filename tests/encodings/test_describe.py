"""The Figure-3 rendering helper."""

import numpy as np

from repro.encodings.describe import describe_encodings, toy_matrix


def test_toy_matrix_exercises_the_width_mechanism():
    matrix = toy_matrix()
    assert matrix.shape[0] > 256          # forces 16-bit absolute indices
    assert set(np.unique(matrix)) <= {-1, 0, 1}
    assert np.count_nonzero(matrix) >= 40  # enough for block to win


def test_description_lists_all_arrays_and_ratios():
    text = describe_encodings(toy_matrix(), block_size=256)
    assert "csc (baseline): " in text
    assert "x1.00 of the CSC baseline" in text
    for array_name in ("pos_pointers", "pos_stream", "pos_indices",
                       "b0_pos_counts"):
        assert array_name in text


def test_sizes_in_text_match_encoding_accounting():
    from repro.encodings import get_encoding
    matrix = toy_matrix()
    text = describe_encodings(matrix, block_size=256)
    stated = [
        int(line.split(":")[1].split("B")[0])
        for line in text.splitlines()
        if "B total" in line
    ]
    actual = [
        get_encoding("csc").from_matrix(matrix).size_bytes(),
        get_encoding("delta").from_matrix(matrix).size_bytes(),
        get_encoding("mixed").from_matrix(matrix).size_bytes(),
        get_encoding("block").from_matrix(matrix,
                                          block_size=256).size_bytes(),
    ]
    assert stated == actual


def test_works_on_arbitrary_small_matrices(rng):
    matrix = rng.choice([-1, 0, 1], (12, 3)).astype(np.int8)
    text = describe_encodings(matrix, block_size=8)
    assert f"nnz={int(np.count_nonzero(matrix))}" in text
