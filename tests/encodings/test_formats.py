"""Per-format unit tests: roundtrips, width selection, sizes, edge cases."""

import numpy as np
import pytest

from repro.encodings import (
    BlockEncoding,
    CSCEncoding,
    DeltaEncoding,
    MixedEncoding,
    encoding_names,
    get_encoding,
    validate_ternary,
    width_bytes_for,
)
from repro.errors import EncodingError

ALL_FORMATS = ("csc", "delta", "mixed", "block")


def ternary(rng, n_in, n_out, density=0.2):
    return rng.choice(
        [-1, 0, 1], size=(n_in, n_out),
        p=[density / 2, 1 - density, density / 2],
    ).astype(np.int8)


@pytest.fixture()
def matrix(rng):
    return ternary(rng, 50, 12)


class TestBase:
    def test_validate_rejects_non_ternary(self):
        with pytest.raises(EncodingError, match="non-ternary"):
            validate_ternary(np.array([[0, 2]]))

    def test_validate_rejects_wrong_rank(self):
        with pytest.raises(EncodingError, match="2-D"):
            validate_ternary(np.array([1, 0, -1]))

    def test_validate_rejects_empty(self):
        with pytest.raises(EncodingError):
            validate_ternary(np.zeros((0, 3)))

    def test_width_selection(self):
        assert width_bytes_for(0) == 1
        assert width_bytes_for(255) == 1
        assert width_bytes_for(256) == 2
        assert width_bytes_for(65535) == 2
        with pytest.raises(EncodingError):
            width_bytes_for(65536)
        with pytest.raises(EncodingError):
            width_bytes_for(-1)

    def test_registry_lists_paper_order(self):
        assert encoding_names() == ALL_FORMATS

    def test_unknown_format(self):
        with pytest.raises(EncodingError, match="unknown"):
            get_encoding("csr")


@pytest.mark.parametrize("name", ALL_FORMATS)
class TestRoundtrip:
    def encode(self, name, matrix, **kw):
        return get_encoding(name).from_matrix(matrix, **kw)

    def test_roundtrip(self, name, matrix):
        enc = self.encode(name, matrix)
        assert np.array_equal(enc.to_matrix(), matrix)

    def test_nnz_matches(self, name, matrix):
        enc = self.encode(name, matrix)
        assert enc.nnz == int(np.count_nonzero(matrix))

    def test_all_zero_matrix(self, name):
        matrix = np.zeros((10, 4), dtype=np.int8)
        enc = self.encode(name, matrix)
        assert enc.nnz == 0
        assert np.array_equal(enc.to_matrix(), matrix)

    def test_fully_dense_matrix(self, name):
        matrix = np.ones((7, 3), dtype=np.int8)
        matrix[::2] = -1
        enc = self.encode(name, matrix)
        assert np.array_equal(enc.to_matrix(), matrix)

    def test_single_cell(self, name):
        matrix = np.array([[-1]], dtype=np.int8)
        enc = self.encode(name, matrix)
        assert np.array_equal(enc.to_matrix(), matrix)

    def test_size_bytes_equals_array_sum(self, name, matrix):
        enc = self.encode(name, matrix)
        assert enc.size_bytes() == sum(
            a.nbytes for a in enc.arrays().values()
        )
        assert enc.size_bytes() == sum(enc.size_breakdown().values())


class TestCSC:
    def test_small_inputs_use_8bit_indices(self, rng):
        enc = CSCEncoding.from_matrix(ternary(rng, 200, 8))
        assert enc.index_width == 1

    def test_large_inputs_use_16bit_indices(self, rng):
        enc = CSCEncoding.from_matrix(ternary(rng, 300, 8))
        assert enc.index_width == 2

    def test_pointer_width_grows_with_nnz(self, rng):
        dense = np.ones((100, 10), dtype=np.int8)  # nnz=1000 per polarity? no: all +1
        enc = CSCEncoding.from_matrix(dense)
        assert enc.pos.pointers.itemsize == 2  # positions up to 1000

    def test_column_extraction(self):
        matrix = np.zeros((6, 2), dtype=np.int8)
        matrix[[1, 4], 0] = 1
        matrix[2, 1] = -1
        enc = CSCEncoding.from_matrix(matrix)
        assert list(enc.pos.column(0)) == [1, 4]
        assert list(enc.neg.column(1)) == [2]
        assert list(enc.neg.column(0)) == []


class TestDelta:
    def test_stream_stores_first_absolute_then_gaps(self):
        matrix = np.zeros((20, 1), dtype=np.int8)
        matrix[[3, 7, 15], 0] = 1
        enc = DeltaEncoding.from_matrix(matrix, stride=1)
        assert list(enc.pos.stream) == [3, 4, 8]
        assert list(enc.pos.counts) == [3]

    def test_prescaled_stride(self):
        matrix = np.zeros((20, 1), dtype=np.int8)
        matrix[[3, 7], 0] = 1
        enc = DeltaEncoding.from_matrix(matrix, stride=2)
        assert list(enc.pos.stream) == [6, 8]
        assert np.array_equal(enc.to_matrix(), matrix)

    def test_large_gap_promotes_whole_stream(self):
        matrix = np.zeros((600, 2), dtype=np.int8)
        matrix[[0, 1], 0] = 1
        matrix[[0, 500], 1] = 1   # gap 500 > 255
        enc = DeltaEncoding.from_matrix(matrix)
        assert enc.stream_width == 2

    def test_small_gaps_stay_8bit(self):
        matrix = np.zeros((600, 1), dtype=np.int8)
        matrix[[100, 150, 200], 0] = 1
        enc = DeltaEncoding.from_matrix(matrix)
        assert enc.pos.stream.itemsize == 1

    def test_invalid_stride(self):
        with pytest.raises(EncodingError, match="stride"):
            DeltaEncoding.from_matrix(np.array([[1]], dtype=np.int8),
                                      stride=3)


class TestMixed:
    def test_counts_and_absolute_indices(self):
        matrix = np.zeros((10, 2), dtype=np.int8)
        matrix[[2, 5], 0] = 1
        matrix[7, 1] = 1
        enc = MixedEncoding.from_matrix(matrix)
        assert list(enc.pos.counts) == [2, 1]
        assert list(enc.pos.indices) == [2, 5, 7]


class TestBlock:
    def test_indices_always_8bit(self, rng):
        enc = BlockEncoding.from_matrix(ternary(rng, 1000, 6))
        for block in enc.pos_blocks + enc.neg_blocks:
            assert block.indices.itemsize == 1

    def test_block_count(self, rng):
        enc = BlockEncoding.from_matrix(ternary(rng, 700, 4),
                                        block_size=256)
        assert enc.n_blocks == 3

    def test_block_local_indices_below_block_size(self, rng):
        enc = BlockEncoding.from_matrix(ternary(rng, 500, 6), block_size=64)
        for block in enc.pos_blocks + enc.neg_blocks:
            if len(block.indices):
                assert int(block.indices.max()) < 64

    def test_count_widths_uniform_across_blocks(self, rng):
        enc = BlockEncoding.from_matrix(ternary(rng, 520, 5), block_size=128)
        widths = {
            b.counts.itemsize for b in enc.pos_blocks + enc.neg_blocks
        }
        assert len(widths) == 1

    def test_invalid_block_size(self, rng):
        with pytest.raises(EncodingError, match="block_size"):
            BlockEncoding.from_matrix(ternary(rng, 10, 2), block_size=0)
        with pytest.raises(EncodingError, match="block_size"):
            BlockEncoding.from_matrix(ternary(rng, 10, 2), block_size=512)

    def test_smallest_format_on_wide_inputs(self, rng):
        # Figure 5b's setting: wide input, 16-bit activations (delta
        # offsets prescaled by stride 2).  Block's guaranteed 8-bit
        # indices make it the most compact; CSC's absolute 16-bit
        # indices plus pointers make it the largest.
        matrix = ternary(rng, 784, 32, density=0.1)
        sizes = {
            name: get_encoding(name).from_matrix(
                matrix, **({"stride": 2} if name == "delta" else {})
            ).size_bytes()
            for name in ALL_FORMATS
        }
        assert sizes["block"] == min(sizes.values())
        assert sizes["csc"] == max(sizes.values())
