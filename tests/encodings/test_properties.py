"""Hypothesis property tests over arbitrary ternary matrices."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encodings import encoding_names, get_encoding
from repro.encodings.base import PolaritySplit


def ternary_matrices(max_in=80, max_out=12):
    shapes = st.tuples(
        st.integers(1, max_in), st.integers(1, max_out)
    )
    return shapes.flatmap(
        lambda shape: hnp.arrays(
            np.int8, shape, elements=st.sampled_from([-1, 0, 1])
        )
    )


@settings(max_examples=40, deadline=None)
@given(matrix=ternary_matrices())
def test_all_formats_roundtrip_losslessly(matrix):
    for name in encoding_names():
        encoding = get_encoding(name).from_matrix(matrix)
        assert np.array_equal(encoding.to_matrix(), matrix), name


@settings(max_examples=40, deadline=None)
@given(matrix=ternary_matrices())
def test_nnz_invariant_across_formats(matrix):
    expected = int(np.count_nonzero(matrix))
    for name in encoding_names():
        assert get_encoding(name).from_matrix(matrix).nnz == expected


@settings(max_examples=40, deadline=None)
@given(matrix=ternary_matrices())
def test_storage_at_least_one_byte_per_connection(matrix):
    # No format can store a connection in less than one index byte.
    nnz = int(np.count_nonzero(matrix))
    for name in encoding_names():
        assert get_encoding(name).from_matrix(matrix).size_bytes() >= nnz


@settings(max_examples=40, deadline=None)
@given(matrix=ternary_matrices(), stride=st.sampled_from([1, 2]))
def test_delta_roundtrips_for_both_strides(matrix, stride):
    encoding = get_encoding("delta").from_matrix(matrix, stride=stride)
    assert np.array_equal(encoding.to_matrix(), matrix)


@settings(max_examples=40, deadline=None)
@given(matrix=ternary_matrices())
def test_polarity_split_partitions_the_matrix(matrix):
    split = PolaritySplit.from_matrix(matrix)
    assert np.array_equal(split.to_matrix(), matrix)
    for j in range(split.n_out):
        # Disjoint index sets, each sorted ascending.
        pos, neg = set(split.pos[j]), set(split.neg[j])
        assert not (pos & neg)
        assert list(split.pos[j]) == sorted(split.pos[j])
        assert list(split.neg[j]) == sorted(split.neg[j])


@settings(max_examples=30, deadline=None)
@given(
    matrix=ternary_matrices(max_in=300),
    block_size=st.integers(1, 256),
)
def test_block_indices_always_fit_a_byte(matrix, block_size):
    encoding = get_encoding("block").from_matrix(
        matrix, block_size=block_size
    )
    for block in encoding.pos_blocks + encoding.neg_blocks:
        assert block.indices.dtype == np.uint8
        if len(block.indices):
            assert int(block.indices.max()) < block_size
    assert np.array_equal(encoding.to_matrix(), matrix)
