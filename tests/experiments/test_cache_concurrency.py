"""Concurrent access to the experiment cache (ISSUE-2 satellite).

Concurrent benchmark workers hammer one key: no interleaved partial
JSON on disk, compute runs once per process, every reader sees the
complete value.
"""

import json
import threading

import pytest

from repro.experiments import cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.clear_memory_cache()
    yield tmp_path
    cache.clear_memory_cache()


class TestCachedJsonConcurrency:
    def test_one_key_hammered_by_many_threads(self, isolated_cache):
        calls = []
        payload = {"rows": list(range(500)), "note": "x" * 1000}

        def compute():
            calls.append(1)
            return payload

        results = [None] * 16
        errors = []

        def worker(slot):
            try:
                results[slot] = cache.cached_json("hammered", compute)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert len(calls) == 1                 # computed exactly once
        assert all(r == payload for r in results)
        on_disk = json.loads(
            (isolated_cache / "hammered.json").read_text()
        )
        assert on_disk == payload
        # No leftover temp files from the atomic-write protocol.
        assert list(isolated_cache.glob("*.tmp")) == []

    def test_distinct_keys_do_not_serialize_each_other(self,
                                                       isolated_cache):
        # A slow computation on one key must not block another key
        # (per-key locking, not one global lock around compute()).
        order = []
        gate = threading.Event()

        def slow():
            gate.wait(timeout=5.0)
            order.append("slow")
            return "slow-value"

        def fast():
            order.append("fast")
            return "fast-value"

        slow_thread = threading.Thread(
            target=cache.cached_json, args=("slow-key", slow)
        )
        slow_thread.start()
        assert cache.cached_json("fast-key", fast) == "fast-value"
        gate.set()
        slow_thread.join()
        assert order == ["fast", "slow"]

    def test_concurrent_process_style_writers_never_corrupt(
        self, isolated_cache
    ):
        # Simulate two independent processes (no shared memo): both
        # write the same key directly via the atomic protocol; the file
        # is always complete JSON.
        path = isolated_cache / "contended.json"
        blob_a = json.dumps({"who": "a", "data": list(range(2000))})
        blob_b = json.dumps({"who": "b", "data": list(range(2000))})
        stop = threading.Event()
        seen_partial = []

        def writer(blob):
            while not stop.is_set():
                cache._write_atomic(path, blob)

        def reader():
            while not stop.is_set():
                if path.exists():
                    try:
                        json.loads(path.read_text())
                    except json.JSONDecodeError:
                        seen_partial.append(True)

        threads = [
            threading.Thread(target=writer, args=(blob_a,)),
            threading.Thread(target=writer, args=(blob_b,)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert not seen_partial
        assert json.loads(path.read_text())["who"] in ("a", "b")

    def test_corrupt_entry_recomputed(self, isolated_cache):
        (isolated_cache / "broken.json").write_text("{not json")
        value = cache.cached_json("broken", lambda: {"ok": True})
        assert value == {"ok": True}
        assert json.loads(
            (isolated_cache / "broken.json").read_text()
        ) == {"ok": True}
