"""Concurrent access to the experiment cache (ISSUE-2 satellite).

Concurrent benchmark workers hammer one key: no interleaved partial
JSON on disk, compute runs once per process, every reader sees the
complete value.  The thread tests cover the in-process locking; the
multiprocessing test at the bottom races real worker processes the way
the parallel experiment runner does.
"""

import json
import multiprocessing
import os
import threading
import uuid
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.experiments import cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.clear_memory_cache()
    yield tmp_path
    cache.clear_memory_cache()


class TestCachedJsonConcurrency:
    def test_one_key_hammered_by_many_threads(self, isolated_cache):
        calls = []
        payload = {"rows": list(range(500)), "note": "x" * 1000}

        def compute():
            calls.append(1)
            return payload

        results = [None] * 16
        errors = []

        def worker(slot):
            try:
                results[slot] = cache.cached_json("hammered", compute)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert len(calls) == 1                 # computed exactly once
        assert all(r == payload for r in results)
        on_disk = json.loads(
            (isolated_cache / "hammered.json").read_text()
        )
        assert on_disk == payload
        # No leftover temp files from the atomic-write protocol.
        assert list(isolated_cache.glob("*.tmp")) == []

    def test_distinct_keys_do_not_serialize_each_other(self,
                                                       isolated_cache):
        # A slow computation on one key must not block another key
        # (per-key locking, not one global lock around compute()).
        order = []
        gate = threading.Event()

        def slow():
            gate.wait(timeout=5.0)
            order.append("slow")
            return "slow-value"

        def fast():
            order.append("fast")
            return "fast-value"

        slow_thread = threading.Thread(
            target=cache.cached_json, args=("slow-key", slow)
        )
        slow_thread.start()
        assert cache.cached_json("fast-key", fast) == "fast-value"
        gate.set()
        slow_thread.join()
        assert order == ["fast", "slow"]

    def test_concurrent_process_style_writers_never_corrupt(
        self, isolated_cache
    ):
        # Simulate two independent processes (no shared memo): both
        # write the same key directly via the atomic protocol; the file
        # is always complete JSON.
        path = isolated_cache / "contended.json"
        blob_a = json.dumps({"who": "a", "data": list(range(2000))})
        blob_b = json.dumps({"who": "b", "data": list(range(2000))})
        stop = threading.Event()
        seen_partial = []

        def writer(blob):
            while not stop.is_set():
                cache._write_atomic(path, blob)

        def reader():
            while not stop.is_set():
                if path.exists():
                    try:
                        json.loads(path.read_text())
                    except json.JSONDecodeError:
                        seen_partial.append(True)

        threads = [
            threading.Thread(target=writer, args=(blob_a,)),
            threading.Thread(target=writer, args=(blob_b,)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert not seen_partial
        assert json.loads(path.read_text())["who"] in ("a", "b")

    def test_corrupt_entry_recomputed(self, isolated_cache):
        (isolated_cache / "broken.json").write_text("{not json")
        value = cache.cached_json("broken", lambda: {"ok": True})
        assert value == {"ok": True}
        assert json.loads(
            (isolated_cache / "broken.json").read_text()
        ) == {"ok": True}


# -- cross-process ------------------------------------------------------------

_MP_PAYLOAD = {"rows": list(range(400)), "who": "any"}


def _mp_hammer(cache_root: str, sentinel_dir: str) -> list:
    """One worker process: hit the same key repeatedly.

    Every actual computation drops a pid-stamped sentinel file, so the
    parent can count computations per process after the race.
    """
    os.environ["REPRO_CACHE_DIR"] = cache_root
    cache.clear_memory_cache()  # forked children share the parent memo
    pid = os.getpid()

    def compute():
        stamp = f"compute-{pid}-{uuid.uuid4().hex}"
        (Path(sentinel_dir) / stamp).touch()
        return _MP_PAYLOAD

    return [
        cache.cached_json("mp-hammered", compute) for _ in range(5)
    ]


class TestCachedJsonAcrossProcesses:
    def test_one_key_hammered_by_many_processes(self, isolated_cache,
                                                tmp_path):
        """N real processes race one cold key, runner-style.

        Across processes several may compute before the first publish
        (last writer wins, all wrote equal bytes) — but each process
        computes at most once, the published file is always complete
        JSON, and no temp files leak.
        """
        sentinel_dir = tmp_path / "sentinels"
        sentinel_dir.mkdir()
        workers = 6
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                pool.submit(
                    _mp_hammer, str(isolated_cache), str(sentinel_dir)
                )
                for _ in range(workers)
            ]
            results = [f.result(timeout=60) for f in futures]

        # Every read in every process saw the complete value.
        assert all(
            value == _MP_PAYLOAD
            for worker_values in results
            for value in worker_values
        )
        # At least one process computed; no process computed twice.
        per_pid: dict[str, int] = {}
        for sentinel in sentinel_dir.iterdir():
            pid = sentinel.name.split("-")[1]
            per_pid[pid] = per_pid.get(pid, 0) + 1
        assert per_pid
        assert all(count == 1 for count in per_pid.values())
        # The published entry is one complete, parseable JSON document.
        on_disk = json.loads(
            (isolated_cache / "mp-hammered.json").read_text()
        )
        assert on_disk == _MP_PAYLOAD
        assert list(isolated_cache.glob("*.tmp")) == []
