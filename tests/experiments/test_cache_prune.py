"""Cache pruning: prefix/staleness selection and hammer safety.

Sits beside test_cache_concurrency.py on purpose: pruning is the one
operation that *deletes* from the shared disk cache, so the interesting
failure modes are races against concurrent writers and other pruners.
"""

import json
import threading

import pytest

from repro.experiments import cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.clear_memory_cache()
    yield tmp_path
    cache.clear_memory_cache()


def _seed_entries(root, keys):
    for key in keys:
        (root / f"{key}.json").write_text(json.dumps({"key": key}))


class TestSchemaParsing:
    def test_versioned_keys_parse(self):
        assert cache.schema_of("fig6-v2-search-c24") == ("fig6", 2)
        assert cache.schema_of("search-v1-s2-digits") == ("search", 1)
        assert cache.schema_of("a_b.c-v10-x") == ("a_b.c", 10)

    def test_unversioned_keys_do_not(self):
        assert cache.schema_of("plain-key") is None
        assert cache.schema_of("v2-x") is None
        assert cache.schema_of("fig6-v-x") is None


class TestPruneSelection:
    KEYS = [
        "fig6-v1-old-a",
        "fig6-v1-old-b",
        "fig6-v2-new",
        "search-v1-x",
        "plain-key",
    ]

    def test_entries_listing_respects_prefix(self, isolated_cache):
        _seed_entries(isolated_cache, self.KEYS)
        assert cache.cache_entries() == sorted(self.KEYS)
        assert cache.cache_entries("fig6-") == [
            "fig6-v1-old-a", "fig6-v1-old-b", "fig6-v2-new",
        ]

    def test_stale_only_keeps_newest_schema_version(self, isolated_cache):
        _seed_entries(isolated_cache, self.KEYS)
        report = cache.prune_cache(stale_only=True)
        assert report.deleted == ("fig6-v1-old-a", "fig6-v1-old-b")
        # The newest fig6 version, the sole search version, and the
        # unversioned key all survive.
        assert cache.cache_entries() == [
            "fig6-v2-new", "plain-key", "search-v1-x",
        ]

    def test_prefix_prune_deletes_only_matching(self, isolated_cache):
        _seed_entries(isolated_cache, self.KEYS)
        report = cache.prune_cache(prefix="search-v1-")
        assert report.deleted == ("search-v1-x",)
        assert report.bytes_reclaimed > 0
        assert "search-v1-x" not in cache.cache_entries()

    def test_dry_run_deletes_nothing(self, isolated_cache):
        _seed_entries(isolated_cache, self.KEYS)
        report = cache.prune_cache(dry_run=True)
        assert report.dry_run
        assert set(report.deleted) == set(self.KEYS)
        assert cache.cache_entries() == sorted(self.KEYS)

    def test_prune_purges_memo_so_value_is_not_resurrected(
        self, isolated_cache
    ):
        _seed_entries(isolated_cache, ["res-v1-x"])
        # Warm the in-process memo from disk.
        assert cache.cached_json("res-v1-x", lambda: {"fresh": 1}) == {
            "key": "res-v1-x"
        }
        cache.prune_cache(prefix="res-")
        # A pruned key recomputes — the stale memo must not serve the
        # deleted entry's value.
        assert cache.cached_json(
            "res-v1-x", lambda: {"fresh": 1}
        ) == {"fresh": 1}


class TestPruneHammer:
    def test_writers_and_pruners_race_without_errors(self, isolated_cache):
        """Writers repopulate keys while two pruners sweep them.

        The invariants: nobody raises (unlink tolerates already-gone
        files), every surviving file is complete JSON, and a final
        prune leaves the directory empty of matching entries.
        """
        stop = threading.Event()
        errors = []
        keys = [f"hammer-v1-{i}" for i in range(8)]

        def writer(key):
            payload = json.dumps({"key": key, "pad": "x" * 256})
            try:
                while not stop.is_set():
                    cache._write_atomic(
                        isolated_cache / f"{key}.json", payload
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def pruner():
            try:
                while not stop.is_set():
                    cache.prune_cache(prefix="hammer-")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(key,)) for key in keys
        ] + [threading.Thread(target=pruner) for _ in range(2)]
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()

        assert not errors
        # Whatever survived the race is complete JSON (atomic writes
        # and whole-file unlinks never expose partial entries).
        for path in isolated_cache.glob("hammer-*.json"):
            try:
                assert json.loads(path.read_text())["pad"] == "x" * 256
            except FileNotFoundError:
                pass  # a pruner removed it between glob and read
        final = cache.prune_cache(prefix="hammer-")
        assert not final.dry_run
        assert cache.cache_entries("hammer-") == []
        # No temp files leaked from the atomic-write protocol.
        assert list(isolated_cache.glob("*.tmp")) == []

    def test_two_pruners_one_set_of_keys(self, isolated_cache):
        """Two pruners sweep the same static keys; deletions overlap
        but neither raises and the union removes everything."""
        keys = [f"dual-v1-{i}" for i in range(20)]
        _seed_entries(isolated_cache, keys)
        reports = [None, None]
        errors = []

        def sweep(slot):
            try:
                reports[slot] = cache.prune_cache(prefix="dual-")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=(i,)) for i in (0, 1)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert cache.cache_entries("dual-") == []
        # Both pruners finished; together they account for every key
        # (overlap is fine — unlink(missing_ok=True) absorbs it).
        assert all(r is not None for r in reports)
        assert set(reports[0].deleted) | set(reports[1].deleted) == set(
            keys
        )
