"""Experiment machinery that runs without training: fig2, fig5, tables,
cache.  The training-backed figures are exercised by the benchmark suite
(see benchmarks/) and by the integration smoke test."""

import numpy as np
import pytest

from repro.experiments import fig2, fig5
from repro.experiments.cache import cached_json, clear_memory_cache
from repro.experiments.tables import format_table, ratio_str
from repro.mcu.board import STM32F072RB


class TestFig2:
    def test_macc_counts_matched_within_rounding(self):
        rows = fig2.run_fig2()
        by_pair = {}
        for row in rows:
            by_pair.setdefault(row.pair, {})[row.kind] = row
        for pair in by_pair.values():
            cnn, fc = pair["cnn"], pair["fc"]
            assert fc.maccs == pytest.approx(cnn.maccs, rel=0.02)

    def test_fc_is_faster_at_equal_maccs(self):
        rows = fig2.run_fig2()
        assert fig2.fc_always_faster(rows)

    def test_interpreter_confirms_analytic_for_first_pair(self):
        """The figure's bench uses the analytic path; prove it against the
        executing interpreter on the smaller pair."""
        from repro.kernels.codegen_cnn import generate_conv
        from repro.kernels.codegen_dense import generate_dense
        k, s = fig2.PAIRS[0]
        conv_spec = fig2.make_conv_spec(k, s)
        conv_image = generate_conv(conv_spec)
        rng = np.random.default_rng(0)
        conv_image.write_input(rng.integers(-40, 40, 16 * 16))
        measured = conv_image.run().cycles
        from repro.kernels.codegen_cnn import count_conv
        assert measured == count_conv(conv_spec).cycles(STM32F072RB.costs)

        fc_spec = fig2.make_fc_spec(fig2.matched_fc_n_out(k, s))
        fc_image = generate_dense(fc_spec)
        fc_image.write_input(rng.integers(-40, 40, 256))
        from repro.kernels.codegen_dense import count_dense
        assert fc_image.run().cycles == count_dense(fc_spec).cycles(
            STM32F072RB.costs
        )

    def test_table_renders(self):
        text = fig2.format_fig2(fig2.run_fig2())
        assert "CNN" in text and "FC" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def points(self):
        return fig5.run_fig5()

    def test_sweep_covers_paper_sizes(self, points):
        assert {p.n_out for p in points} == {32, 64, 128, 256}
        assert len(points) == 16

    def test_latency_ordering(self, points):
        assert fig5.latency_ordering_holds(points)

    def test_memory_ordering(self, points):
        assert fig5.memory_ordering_holds(points)

    def test_latency_scales_linearly_with_output_size(self, points):
        for fmt in ("csc", "delta", "mixed", "block"):
            at32 = fig5.by_format_at(points, 32)[fmt].cycles
            at256 = fig5.by_format_at(points, 256)[fmt].cycles
            assert at256 == pytest.approx(8 * at32, rel=0.08)

    def test_interpreter_confirms_analytic_at_32(self, points):
        from repro.kernels.codegen_sparse import generate_sparse
        spec = fig5.make_fig5_spec(32)
        rng = np.random.default_rng(1)
        x = rng.integers(-100, 100, fig5.INPUT_DIM)
        for fmt in ("csc", "delta", "mixed", "block"):
            image = generate_sparse(spec, fmt)
            image.write_input(x)
            assert image.run().cycles == fig5.by_format_at(
                points, 32
            )[fmt].cycles, fmt


class TestTables:
    def test_format_table_aligns_columns(self):
        text = format_table(("a", "bb"), [(1, 2.5), ("xxx", None)])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1
        assert "—" in text   # None rendering

    def test_ratio_str(self):
        assert "x2.00" in ratio_str(4.0, 2.0)
        assert "n/a" in ratio_str(4.0, None)


class TestCache:
    def test_roundtrip_and_memoization(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        assert cached_json("unit-key", compute) == {"value": 42}
        assert cached_json("unit-key", compute) == {"value": 42}
        assert len(calls) == 1
        # Fresh process simulation: drop the memo, hit the disk copy.
        clear_memory_cache()
        assert cached_json("unit-key", compute) == {"value": 42}
        assert len(calls) == 1

    def test_corrupt_entry_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        (tmp_path / "bad-key.json").write_text("{nope")
        assert cached_json("bad-key", lambda: [1, 2]) == [1, 2]

    def test_non_serializable_result_fails_fast(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        with pytest.raises(TypeError):
            cached_json("obj-key", lambda: object())
