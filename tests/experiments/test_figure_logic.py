"""Pure logic of the training-backed figures, tested on synthetic rows
(the live training paths are exercised by the benchmark suite)."""

import numpy as np
import pytest

from repro.experiments import fig6, fig7, fig8


def _mlp_point(name, accuracy, params, deployable=True):
    return fig6.MLPPoint(
        name=name, hidden=(8,), accuracy=accuracy, parameters=params,
        memory_kb=params / 1024, latency_ms=params / 1000,
        deployable=deployable,
    )


def _nc_point(tier, accuracy, memory_kb, latency_ms):
    return fig6.NeuroCPoint(
        tier=tier, accuracy=accuracy, parameters=int(memory_kb * 1024),
        nnz=100, memory_kb=memory_kb, latency_ms=latency_ms,
        deployable=True,
    )


class TestFig6Pairing:
    def _comparisons(self, monkeypatch, mlps, tiers):
        monkeypatch.setattr(
            fig6, "mlp_search_points", lambda seed=0, jobs=None: mlps
        )
        monkeypatch.setattr(
            fig6, "neuroc_tier_points", lambda jobs=None: tiers
        )
        return fig6.tier_comparisons()

    def test_pairs_with_smallest_matching_mlp(self, monkeypatch):
        mlps = [
            _mlp_point("a", 0.95, 10_000),
            _mlp_point("b", 0.97, 30_000),
            _mlp_point("c", 0.97, 20_000),
        ]
        tiers = {
            "small": _nc_point("small", 0.94, 3.0, 4.0),
            "medium": _nc_point("medium", 0.965, 6.0, 8.0),
            "large": _nc_point("large", 0.99, 20.0, 30.0),
        }
        comparisons = self._comparisons(monkeypatch, mlps, tiers)
        by_tier = {c.tier: c for c in comparisons}
        assert by_tier["small"].mlp.name == "a"
        assert by_tier["medium"].mlp.name == "c"   # smallest above 0.965
        assert by_tier["large"].mlp is None        # nothing reaches 0.99

    def test_reductions(self, monkeypatch):
        mlps = [_mlp_point("a", 0.96, 10_000)]
        tiers = {
            "small": _nc_point("small", 0.95, 1.0, 2.0),
            "medium": _nc_point("medium", 0.955, 2.0, 4.0),
            "large": _nc_point("large", 0.96, 4.0, 5.0),
        }
        comparisons = self._comparisons(monkeypatch, mlps, tiers)
        small = next(c for c in comparisons if c.tier == "small")
        # mlp a: 10 ms / 9.77 KB; nc small: 2 ms / 1 KB.
        assert fig6.latency_reduction(small) == pytest.approx(
            1 - 2.0 / 10.0
        )
        assert fig6.memory_reduction(small) == pytest.approx(
            1 - 1.0 / (10_000 / 1024)
        )
        large = next(c for c in comparisons if c.tier == "large")
        assert fig6.latency_reduction(large) is not None


class TestFig7Predicates:
    def _row(self, dataset, family, accuracy, latency, memory):
        return fig7.Fig7Row(
            dataset=dataset, family=family, accuracy=accuracy,
            latency_ms=latency, memory_kb=memory, deployable=True,
        )

    def test_wins_with_comparable_accuracy(self):
        rows = [
            self._row("d1", "mlp", 0.95, 100.0, 80.0),
            self._row("d1", "neuroc", 0.947, 40.0, 30.0),  # within 0.5 pp
        ]
        assert fig7.neuroc_wins_everywhere(rows)

    def test_loses_on_clear_accuracy_gap(self):
        rows = [
            self._row("d1", "mlp", 0.95, 100.0, 80.0),
            self._row("d1", "neuroc", 0.93, 40.0, 30.0),
        ]
        assert not fig7.neuroc_wins_everywhere(rows)

    def test_loses_on_latency(self):
        rows = [
            self._row("d1", "mlp", 0.95, 100.0, 80.0),
            self._row("d1", "neuroc", 0.96, 120.0, 30.0),
        ]
        assert not fig7.neuroc_wins_everywhere(rows)


class TestFig8Predicates:
    def _row(self, dataset, nc, tnn, converged, lat=0.1, mem=300):
        return fig8.Fig8Row(
            dataset=dataset, neuroc_accuracy=nc, tnn_accuracy=tnn,
            tnn_converged=converged, chance=0.2,
            latency_increase_ms=lat, memory_increase_bytes=mem,
        )

    def test_necessary_requires_drop_and_a_divergence(self):
        good = [
            self._row("a", 0.97, 0.95, True),
            self._row("b", 0.90, 0.85, True),
            self._row("c", 0.88, 0.20, False),
        ]
        assert fig8.scale_is_necessary(good)
        no_divergence = [self._row("a", 0.97, 0.95, True)]
        assert not fig8.scale_is_necessary(no_divergence)
        tnn_wins_somewhere = [
            self._row("a", 0.90, 0.95, True),
            self._row("c", 0.88, 0.20, False),
        ]
        assert not fig8.scale_is_necessary(tnn_wins_somewhere)

    def test_cheap_bounds(self):
        assert fig8.scale_is_cheap([self._row("a", 0.9, 0.8, True)])
        assert not fig8.scale_is_cheap(
            [self._row("a", 0.9, 0.8, True, lat=1.5)]
        )
        assert not fig8.scale_is_cheap(
            [self._row("a", 0.9, 0.8, True, mem=4096)]
        )

    def test_accuracy_drop_in_percentage_points(self):
        row = self._row("a", 0.97, 0.95, True)
        assert row.accuracy_drop_pp == pytest.approx(2.0)


class TestFig8MultStripping:
    def test_strip_replaces_vectors_with_scalar_median(self, rng):
        from repro.kernels.spec import make_neuroc_spec
        from repro.quantize.ptq import QuantizedModel

        adjacency = rng.choice([-1, 0, 1], (10, 4)).astype(np.int8)
        spec = make_neuroc_spec(
            adjacency, np.zeros(4, np.int32),
            np.array([10, 20, 30, 40], dtype=np.int16), shift=8,
            act_in_width=1, act_out_width=2, relu=True,
        )
        model = QuantizedModel([spec], input_scale=1 / 127, act_width=1)
        stripped = fig8._strip_per_neuron_mult(model)
        assert isinstance(stripped.specs[0].mult, int)
        assert stripped.specs[0].mult == 25  # median of 10..40
        # Architecture untouched.
        assert np.array_equal(
            stripped.specs[0].adjacency, spec.adjacency
        )
