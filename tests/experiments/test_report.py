"""Report generator: section structure, with experiment runs stubbed."""


from repro.experiments import report


def test_table1_section_static():
    text = report.table1_section()
    assert "Table 1" in text
    assert "Cortex-M0" in text


def test_fig2_section_uses_live_fast_experiment():
    text = report.fig2_section()
    assert "reproduced" in text
    assert "| pair1 | CNN |" in text


def test_fig5_section_uses_live_fast_experiment():
    text = report.fig5_section()
    assert "Figure 5" in text
    assert "| delta |" in text
    # paper references rendered alongside
    assert "paper" in text.lower()


def test_verdict_wording():
    assert report._verdict(True) == "reproduced"
    assert report._verdict(False) == "NOT reproduced"
    assert report._fmt(None) == "—"
    assert report._fmt(1.234, 1) == "1.2"


def test_fig1_section_with_stubbed_run(monkeypatch):
    from repro.experiments import fig1 as fig1_module

    points = [
        fig1_module.StrategyPoint("quantization", 16, 0.9, 300, 0.9),
        fig1_module.StrategyPoint("random", 16, 0.1, 300, 0.5),
    ]
    monkeypatch.setattr(report.fig1, "run_fig1", lambda: points)
    text = report.fig1_section()
    assert "reproduced" in text
    assert "quantization" in text
