"""The work-unit execution engine behind every training-backed figure.

Covers job-count resolution, the epoch cap, per-unit seeding, the
sequential/parallel determinism contract, the warm-cache fast path, and
the timing registry ``repro report`` and the benchmarks persist.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import cache, runner


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_MAX_EPOCHS", raising=False)
    cache.clear_memory_cache()
    runner.reset_timings()
    yield tmp_path
    cache.clear_memory_cache()
    runner.reset_timings()


# Module-level unit fns: worker processes import them by reference.

def _square(n: int) -> dict:
    return {"n": n, "sq": n * n}


def _seeded_draw(key: str) -> list:
    rng = np.random.default_rng(runner.unit_seed(key))
    return [float(v) for v in rng.random(4)]


def _units(count: int = 3, cache_units: bool = True):
    return [
        runner.WorkUnit(
            key=f"test-unit-{i}", fn=_square, args=(i,),
            cache=cache_units,
        )
        for i in range(count)
    ]


class TestJobResolution:
    def test_default_is_sequential(self):
        assert runner.resolve_jobs() == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert runner.resolve_jobs() == 3

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert runner.resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert runner.resolve_jobs(0) >= 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError, match="REPRO_JOBS"):
            runner.resolve_jobs()


class TestEffectiveEpochs:
    def test_no_cap(self):
        assert runner.effective_epochs(30) == 30

    def test_cap_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EPOCHS", "5")
        assert runner.effective_epochs(30) == 5
        assert runner.effective_epochs(3) == 3

    def test_zero_cap_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EPOCHS", "0")
        assert runner.effective_epochs(30) == 30

    def test_invalid_cap_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EPOCHS", "lots")
        with pytest.raises(ConfigurationError, match="REPRO_MAX_EPOCHS"):
            runner.effective_epochs(30)


class TestUnitSeed:
    def test_deterministic(self):
        assert runner.unit_seed("a-key") == runner.unit_seed("a-key")

    def test_distinct_keys_distinct_seeds(self):
        seeds = {runner.unit_seed(f"key-{i}") for i in range(200)}
        assert len(seeds) == 200

    def test_fits_default_rng(self):
        seed = runner.unit_seed("any")
        assert 0 <= seed < 2 ** 63
        np.random.default_rng(seed)  # must be a legal seed


class TestMapUnits:
    def test_values_in_input_order(self, isolated):
        values = runner.map_units("t", _units())
        assert values == [{"n": i, "sq": i * i} for i in range(3)]

    def test_duplicate_keys_rejected(self):
        units = _units(2) + _units(1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            runner.map_units("t", units)

    def test_results_published_to_disk(self, isolated):
        runner.map_units("t", _units())
        assert json.loads(
            (isolated / "test-unit-2.json").read_text()
        ) == {"n": 2, "sq": 4}

    def test_uncached_units_never_hit_disk(self, isolated):
        values = runner.map_units("t", _units(cache_units=False))
        assert values[1] == {"n": 1, "sq": 1}
        assert list(isolated.glob("*.json")) == []

    def test_warm_run_does_not_recompute(self, isolated):
        runner.map_units("t", _units())
        cache.clear_memory_cache()
        runner.reset_timings()
        runner.map_units("t", _units())
        (run,) = runner.runs()
        assert run.cold_units == 0

    def test_parallel_matches_sequential(self, isolated, tmp_path,
                                         monkeypatch):
        keys = [f"draw-{i}" for i in range(4)]

        def units():
            return [
                runner.WorkUnit(key=k, fn=_seeded_draw, args=(k,))
                for k in keys
            ]

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "seq"))
        cache.clear_memory_cache()
        sequential = runner.map_units("t", units(), jobs=1)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
        cache.clear_memory_cache()
        parallel = runner.map_units("t", units(), jobs=2)

        assert parallel == sequential
        # Both cache trees hold byte-identical published files.
        for key in keys:
            seq_file = (tmp_path / "seq" / f"{key}.json").read_bytes()
            par_file = (tmp_path / "par" / f"{key}.json").read_bytes()
            assert seq_file == par_file

    def test_setup_runs_before_pool(self, isolated):
        ran = []
        runner.map_units(
            "t", _units(), jobs=2, setup=lambda: ran.append(True)
        )
        assert ran == [True]


class TestTimingRegistry:
    def test_runs_recorded(self, isolated):
        runner.map_units("alpha", _units())
        runner.map_units("beta", _units(cache_units=False))
        assert [r.figure for r in runner.runs()] == ["alpha", "beta"]
        (summary_a, summary_b) = runner.timing_summary()
        assert summary_a["units"] == 3
        assert summary_a["cold"] is True
        assert summary_b["figure"] == "beta"

    def test_write_timings(self, isolated, tmp_path):
        runner.map_units("alpha", _units())
        out = runner.write_timings(tmp_path / "timings.json")
        payload = json.loads(out.read_text())
        assert payload["figures"][0]["figure"] == "alpha"
        assert len(payload["units"]) == 3
        assert {"figure", "key", "seconds", "cold", "worker"} <= set(
            payload["units"][0]
        )

    def test_format_summary_mentions_figures(self, isolated):
        runner.map_units("alpha", _units())
        text = runner.format_timing_summary()
        assert "alpha" in text and "wall" in text
