"""The command-line interface, end to end."""

import numpy as np
import pytest

from repro.cli import main
from repro.deploy.serialization import save_quantized_model


@pytest.fixture(scope="module")
def model_file(trained_neuroc, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    return str(save_quantized_model(trained_neuroc.quantized, path))


class TestInformational:
    def test_datasets_lists_all_four(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("digits_like", "mnist_like", "fashion_like",
                     "cifar5_like"):
            assert name in out

    def test_zoo_lists_tiers(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "mnist-large" in out
        assert "best for cifar5_like" in out


class TestModelCommands:
    def test_evaluate(self, model_file, capsys):
        assert main(
            ["evaluate", "--model", model_file, "--dataset", "digits_like"]
        ) == 0
        out = capsys.readouterr().out
        accuracy = float(out.strip().rsplit(" ", 1)[-1])
        assert accuracy > 0.85

    def test_evaluate_feature_mismatch(self, model_file, capsys):
        assert main(
            ["evaluate", "--model", model_file, "--dataset", "mnist_like"]
        ) == 1
        assert "features" in capsys.readouterr().err

    def test_deploy_with_exports(self, model_file, tmp_path, capsys):
        c_out = tmp_path / "engine.c"
        fw_out = tmp_path / "image.bin"
        assert main(
            [
                "deploy", "--model", model_file, "--format", "block",
                "--c-out", str(c_out), "--firmware-out", str(fw_out),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fits 128 KB flash: True" in out
        assert "neuroc_infer" in c_out.read_text()
        from repro.deploy.firmware import verify_firmware_image
        assert verify_firmware_image(fw_out.read_bytes()).crc_ok

    def test_encodings_table(self, model_file, capsys):
        assert main(["encodings", "--model", model_file]) == 0
        out = capsys.readouterr().out
        for fmt in ("csc", "delta", "mixed", "block"):
            assert fmt in out

    def test_missing_model_file(self, capsys):
        assert main(["evaluate", "--model", "/nope.npz"]) == 1
        assert "error" in capsys.readouterr().err


class TestVerify:
    def test_verify_reports_every_pass_and_exact_bounds(
        self, model_file, capsys
    ):
        assert main(
            ["verify", "--model", model_file, "--format", "block"]
        ) == 0
        out = capsys.readouterr().out
        for section in (
            "structure", "reachable", "discipline", "registers",
            "memory", "wcet", "measured",
        ):
            assert section in out
        assert "FAIL" not in out
        assert "model verified" in out
        # The discipline makes the static bound exact, not just tight.
        assert "bound/measured = 1.000" in out

    def test_deploy_over_budget_model_exits_2(
        self, rng, tmp_path, capsys
    ):
        from repro.kernels.spec import make_dense_spec
        from repro.quantize.ptq import QuantizedModel

        weights = rng.integers(-50, 50, (784, 400)).astype(np.int8)
        spec = make_dense_spec(
            weights, rng.integers(-5, 5, 400).astype(np.int32),
            mult=None, act_out_width=4, relu=False,
        )
        oversized = QuantizedModel(
            specs=[spec], input_scale=1 / 127, act_width=1
        )
        path = str(save_quantized_model(oversized, tmp_path / "big.npz"))
        assert main(["deploy", "--model", path]) == 2
        assert "does NOT fit" in capsys.readouterr().err
        assert main(["verify", "--model", path]) == 2
        assert "nothing to verify" in capsys.readouterr().err

    def test_verify_rejects_discipline_violation(
        self, model_file, monkeypatch, capsys
    ):
        # A hand-written kernel that branches on input data, smuggled in
        # behind the deploy() boundary to exercise the failure path.
        from types import SimpleNamespace

        from repro.mcu.board import STM32F072RB
        from repro.mcu.isa import Assembler, Reg
        from repro.mcu.memory import MemoryMap
        import repro.deploy.deployer as deployer_module

        asm = Assembler("rogue")
        asm.movi(Reg.R0, 0x2000_0000)
        asm.ldrsb(Reg.R1, Reg.R0, 0)
        asm.cmpi(Reg.R1, 0)
        asm.beq("skip")
        asm.movi(Reg.R2, 1)
        asm.label("skip")
        asm.halt()
        rogue = SimpleNamespace(
            program=asm.assemble(), memory=MemoryMap.stm32()
        )
        fake_model = SimpleNamespace(
            images=[rogue], board=STM32F072RB
        )
        real_deploy = deployer_module.deploy

        def fake_deploy(quantized, **kwargs):
            deployment = real_deploy(quantized, verify=False)
            object.__setattr__(deployment, "model", fake_model)
            return deployment

        monkeypatch.setattr(deployer_module, "deploy", fake_deploy)
        assert main(["verify", "--model", model_file]) == 2
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "data-dependent" in captured.out
        assert "verification FAILED" in captured.err


class TestServeBench:
    def test_serve_bench_reports_fleet_metrics(
        self, model_file, tmp_path, capsys
    ):
        json_out = tmp_path / "metrics.json"
        assert main(
            [
                "serve-bench", "--model", model_file, "--devices", "2",
                "--requests", "40", "--rate", "500", "--seed", "3",
                "--json-out", str(json_out),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "offered 40" in out
        assert "throughput" in out
        assert "utilization" in out
        import json
        payload = json.loads(json_out.read_text())
        assert (
            payload["completed"] + payload["rejected"] + payload["failed"]
            == payload["offered"] == 40
        )
        assert "latency_ms" in payload["metrics"]["histograms"]

    def test_serve_bench_with_faults_conserves_requests(
        self, model_file, capsys
    ):
        assert main(
            [
                "serve-bench", "--model", model_file, "--devices", "2",
                "--requests", "30", "--rate", "500", "--seed", "7",
                "--brownout-rate", "0.3", "--retries", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "offered 30" in out


class TestTrain:
    def test_train_writes_a_loadable_model(self, tmp_path, capsys):
        out_file = tmp_path / "trained.npz"
        code = main(
            [
                "train", "--dataset", "digits_like", "--hidden", "24",
                "--threshold", "0.85", "--epochs", "8", "--lr", "0.01",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        from repro.deploy.serialization import load_quantized_model
        model = load_quantized_model(out_file)
        assert model.n_in == 64
        assert model.n_out == 10


class TestSearchCommand:
    def test_search_prints_funnel_and_writes_artifact(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.experiments.cache import clear_memory_cache

        clear_memory_cache()
        artifact = tmp_path / "frontier.json"
        assert main([
            "search", "--count", "4", "--stage2-epochs", "2",
            "--epochs", "3", "--n-train", "400", "--n-test", "150",
            "--out", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "searched 4 candidates" in out
        assert "STM32F072RB" in out
        assert "frontier" in out
        payload = artifact.read_text()
        assert '"schema"' in payload and "search-v1" in payload

    def test_search_env_count_knob(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_SEARCH_COUNT", "2")
        from repro.experiments.cache import clear_memory_cache

        clear_memory_cache()
        assert main([
            "search", "--count", "24", "--stage2-epochs", "2",
            "--epochs", "3", "--n-train", "400", "--n-test", "150",
        ]) == 0
        assert "searched 2 candidates" in capsys.readouterr().out


class TestCachePrune:
    def test_prune_lifecycle(self, tmp_path, monkeypatch, capsys):
        import json as _json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cache_root = tmp_path / "cache"
        cache_root.mkdir()
        for key in ("fig0-v1-a", "fig0-v2-b", "other-v1-c"):
            (cache_root / f"{key}.json").write_text(_json.dumps({}))

        assert main(["cache-prune", "--list"]) == 0
        out = capsys.readouterr().out
        assert "scanned 3 entries" in out and "would delete" in out

        assert main(["cache-prune", "--stale-schemas"]) == 0
        out = capsys.readouterr().out
        assert "deleted 1" in out
        assert not (cache_root / "fig0-v1-a.json").exists()
        assert (cache_root / "fig0-v2-b.json").exists()

        assert main(["cache-prune", "--prefix", "other-"]) == 0
        assert "deleted 1" in capsys.readouterr().out
        assert (cache_root / "fig0-v2-b.json").exists()
