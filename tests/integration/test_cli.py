"""The command-line interface, end to end."""

import numpy as np
import pytest

from repro.cli import main
from repro.deploy.serialization import save_quantized_model


@pytest.fixture(scope="module")
def model_file(trained_neuroc, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    return str(save_quantized_model(trained_neuroc.quantized, path))


class TestInformational:
    def test_datasets_lists_all_four(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("digits_like", "mnist_like", "fashion_like",
                     "cifar5_like"):
            assert name in out

    def test_zoo_lists_tiers(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "mnist-large" in out
        assert "best for cifar5_like" in out


class TestModelCommands:
    def test_evaluate(self, model_file, capsys):
        assert main(
            ["evaluate", "--model", model_file, "--dataset", "digits_like"]
        ) == 0
        out = capsys.readouterr().out
        accuracy = float(out.strip().rsplit(" ", 1)[-1])
        assert accuracy > 0.85

    def test_evaluate_feature_mismatch(self, model_file, capsys):
        assert main(
            ["evaluate", "--model", model_file, "--dataset", "mnist_like"]
        ) == 1
        assert "features" in capsys.readouterr().err

    def test_deploy_with_exports(self, model_file, tmp_path, capsys):
        c_out = tmp_path / "engine.c"
        fw_out = tmp_path / "image.bin"
        assert main(
            [
                "deploy", "--model", model_file, "--format", "block",
                "--c-out", str(c_out), "--firmware-out", str(fw_out),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fits 128 KB flash: True" in out
        assert "neuroc_infer" in c_out.read_text()
        from repro.deploy.firmware import verify_firmware_image
        assert verify_firmware_image(fw_out.read_bytes()).crc_ok

    def test_encodings_table(self, model_file, capsys):
        assert main(["encodings", "--model", model_file]) == 0
        out = capsys.readouterr().out
        for fmt in ("csc", "delta", "mixed", "block"):
            assert fmt in out

    def test_missing_model_file(self, capsys):
        assert main(["evaluate", "--model", "/nope.npz"]) == 1
        assert "error" in capsys.readouterr().err


class TestTrain:
    def test_train_writes_a_loadable_model(self, tmp_path, capsys):
        out_file = tmp_path / "trained.npz"
        code = main(
            [
                "train", "--dataset", "digits_like", "--hidden", "24",
                "--threshold", "0.85", "--epochs", "8", "--lr", "0.01",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        from repro.deploy.serialization import load_quantized_model
        model = load_quantized_model(out_file)
        assert model.n_in == 64
        assert model.n_out == 10
