"""End-to-end pipeline: data → train → quantize → encode → flash → infer.

This is the whole §5.1 deployment story on one small task, asserting the
cross-backend invariants the repository is built on.
"""

import numpy as np
import pytest

from repro.core.tnn import train_tnn
from repro.deploy import deploy
from repro.deploy.artifact import DeployedModel
from repro.kernels.codegen_sparse import SPARSE_FORMATS
from repro.mcu.board import STM32F072RB


class TestNeuroCEndToEnd:
    def test_training_reached_usable_accuracy(self, trained_neuroc):
        assert trained_neuroc.float_accuracy > 0.9
        assert trained_neuroc.history.converged

    def test_quantization_preserves_accuracy(self, trained_neuroc):
        assert trained_neuroc.quantized_accuracy >= (
            trained_neuroc.float_accuracy - 0.03
        )

    @pytest.mark.parametrize("fmt", SPARSE_FORMATS)
    def test_on_device_inference_matches_reference(
        self, fmt, trained_neuroc, digits_small
    ):
        deployment = deploy(trained_neuroc.quantized, fmt)
        assert deployment.deployable
        x = digits_small.x_test[:30]
        y = digits_small.y_test[:30]
        simulated = deployment.model.predict(x)
        reference = trained_neuroc.quantized.predict(x)
        assert np.array_equal(simulated, reference)
        assert (simulated == y).mean() > 0.85

    def test_all_formats_agree_on_logits(self, trained_neuroc,
                                         digits_small):
        x = digits_small.x_test[0]
        logits = {
            fmt: deploy(trained_neuroc.quantized, fmt).model.infer(x).logits
            for fmt in SPARSE_FORMATS
        }
        baseline = logits["csc"]
        for fmt, values in logits.items():
            assert np.array_equal(values, baseline), fmt

    def test_formats_differ_in_cost_not_outputs(self, trained_neuroc,
                                                digits_small):
        x = digits_small.x_test[0]
        cycles = {
            fmt: deploy(trained_neuroc.quantized, fmt).model.infer(x).cycles
            for fmt in SPARSE_FORMATS
        }
        assert len(set(cycles.values())) > 1  # traversals cost differently

    def test_deployment_fits_the_board_budgets(self, trained_neuroc):
        deployment = deploy(trained_neuroc.quantized, "block")
        assert deployment.program_memory.fits(STM32F072RB)
        ram = deployment.model.memory.region("ram")
        assert ram.reserved <= ram.size


class TestMLPEndToEnd:
    def test_mlp_pipeline(self, trained_mlp, digits_small):
        deployment = deploy(trained_mlp.quantized)
        assert deployment.deployable
        x, y = digits_small.x_test[:25], digits_small.y_test[:25]
        assert np.array_equal(
            deployment.model.predict(x), trained_mlp.quantized.predict(x)
        )
        assert (deployment.model.predict(x) == y).mean() > 0.85


class TestArchitectureComparison:
    def test_neuroc_cheaper_than_mlp_at_similar_accuracy(
        self, trained_neuroc, trained_mlp
    ):
        """The headline comparison, on the small digits task: at least
        MLP-level accuracy with cheaper inference and storage."""
        assert trained_neuroc.quantized_accuracy >= (
            trained_mlp.quantized_accuracy - 0.03
        )
        neuroc = deploy(trained_neuroc.quantized, "block")
        mlp = deploy(trained_mlp.quantized)
        assert neuroc.latency_ms < mlp.latency_ms
        assert neuroc.program_memory.rodata_bytes < (
            mlp.program_memory.rodata_bytes
        )

    def test_tnn_ablation_runs_and_is_cheaper_but_weaker(
        self, trained_neuroc, digits_small
    ):
        tnn = train_tnn(trained_neuroc.config, digits_small, epochs=25)
        assert tnn.quantized_accuracy <= (
            trained_neuroc.quantized_accuracy + 0.02
        )
        neuroc_size = deploy(trained_neuroc.quantized, "block")
        tnn_size = deploy(tnn.quantized, "block")
        saved = (
            neuroc_size.program_memory.total_bytes
            - tnn_size.program_memory.total_bytes
        )
        assert 0 < saved < 1024  # the w_j array: hundreds of bytes


class TestInterruptSafetyStory:
    def test_inference_state_fits_alongside_a_stack(self, trained_neuroc):
        """§4.1: RAM must leave room to preserve inference state during
        preemption.  Our deployment must leave a reasonable stack margin."""
        deployed = DeployedModel(trained_neuroc.quantized, "block")
        ram = deployed.memory.region("ram")
        stack_budget = 2 * 1024
        assert ram.size - ram.reserved >= stack_budget
