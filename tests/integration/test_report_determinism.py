"""`repro report --jobs N` must be byte-identical to `--jobs 1`.

The acceptance contract of the parallel experiment engine: fanning the
training units out over worker processes changes wall-clock time and
nothing else.  Runs the real CLI in subprocesses against fresh cache
directories, scaled down with ``REPRO_MAX_EPOCHS`` so the whole check
trains in seconds (the unscaled equivalent runs in CI).

The figure subset covers both unit kinds: fig1 is cached training units
(disk round-trip path), fig2/fig5 are uncached analytic units (pool
return path).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"
FIGURES = ("table1", "fig1", "fig2", "fig5")


def _render(tmp_path: Path, tag: str, jobs: int) -> bytes:
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    env["REPRO_CACHE_DIR"] = str(tmp_path / f"cache-{tag}")
    env["REPRO_MAX_EPOCHS"] = "1"
    env.pop("REPRO_JOBS", None)
    out = tmp_path / f"report-{tag}.md"
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro", "report",
            "--jobs", str(jobs), "--figures", *FIGURES,
            "--out", str(out),
        ],
        env=env, capture_output=True, text=True, timeout=570,
    )
    assert completed.returncode == 0, completed.stderr
    # The timing summary goes to stderr, never into the report body.
    assert "Experiment unit timings" in completed.stderr
    return out.read_bytes()


def test_parallel_report_byte_identical(tmp_path):
    sequential = _render(tmp_path, "seq", jobs=1)
    parallel = _render(tmp_path, "par", jobs=4)
    assert sequential  # non-empty body
    assert parallel == sequential
