"""Every codegen entry point funnels its program through verification."""

import numpy as np
import pytest

from repro.kernels import (
    codegen_cnn,
    codegen_dense,
    codegen_sparse,
    codegen_unrolled,
)
from repro.kernels.codegen_cnn import ConvKernelSpec
from repro.kernels.codegen_sparse import SPARSE_FORMATS
from repro.kernels.spec import make_dense_spec, make_neuroc_spec


@pytest.fixture()
def recorder(monkeypatch):
    """Replace assert_static_discipline in every backend with a spy."""
    calls = []

    def spy(program, memory):
        calls.append((program.name, memory))
        return program

    for module in (
        codegen_dense, codegen_sparse, codegen_unrolled, codegen_cnn,
    ):
        monkeypatch.setattr(module, "assert_static_discipline", spy)
    return calls


def _dense_spec(rng):
    return make_dense_spec(
        rng.integers(-20, 20, (16, 8)).astype(np.int8),
        rng.integers(-5, 5, 8).astype(np.int32),
        mult=None, act_out_width=4, relu=True,
    )


def _ternary_spec(rng):
    adjacency = rng.integers(-1, 2, (16, 8)).astype(np.int8)
    return make_neuroc_spec(
        adjacency, rng.integers(-5, 5, 8).astype(np.int32),
        mult=np.full(8, 3, np.int32), shift=6,
    )


def test_dense_generator_verifies(recorder, rng):
    image = codegen_dense.generate_dense(_dense_spec(rng))
    assert [name for name, _ in recorder] == [image.program.name]


def test_unrolled_generator_verifies(recorder, rng):
    image = codegen_unrolled.generate_dense_unrolled(_dense_spec(rng))
    assert [name for name, _ in recorder] == [image.program.name]


@pytest.mark.parametrize("fmt", SPARSE_FORMATS)
def test_sparse_generators_verify(recorder, rng, fmt):
    image = codegen_sparse.generate_sparse(_ternary_spec(rng), fmt)
    assert [name for name, _ in recorder] == [image.program.name]
    assert recorder[0][1] is image.memory


def test_conv_generator_verifies(recorder, rng):
    spec = ConvKernelSpec(
        image_size=8, kernel_size=3, num_filters=2,
        weights=rng.integers(-10, 10, (2, 3, 3)).astype(np.int8),
        bias=rng.integers(-5, 5, 2).astype(np.int32),
    )
    image = codegen_cnn.generate_conv(spec)
    assert [name for name, _ in recorder] == [image.program.name]
