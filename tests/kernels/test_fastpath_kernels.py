"""Every kernel encoding must be bit-exact on the fastpath engine.

This is the second half of the fastpath acceptance bar: the fuzzer in
``tests/mcu/test_fastpath.py`` covers random control flow, this file
covers the *real* generated kernels — dense, unrolled-dense, and all
four sparse encodings — comparing cycles, instruction counts, op
counts, registers, and the decoded output vector between engines.
"""

import numpy as np
import pytest

from repro.core.adjacency import clustered_adjacency
from repro.kernels.codegen_dense import generate_dense
from repro.kernels.codegen_sparse import SPARSE_FORMATS, generate_sparse
from repro.kernels.codegen_unrolled import generate_dense_unrolled
from repro.kernels.ref import layer_forward
from repro.kernels.spec import make_dense_spec, make_neuroc_spec
from repro.mcu.fastpath import FastCPU, make_cpu


def _spec(n_in=64, n_out=12, density=0.15, seed=0):
    rng = np.random.default_rng(seed)
    adjacency = clustered_adjacency(n_in, n_out, density, rng)
    return make_neuroc_spec(
        adjacency=adjacency,
        bias=rng.integers(-100, 100, n_out).astype(np.int32),
        mult=rng.integers(50, 200, n_out).astype(np.int16),
        shift=10, act_in_width=2, act_out_width=2, relu=True,
    )


def _dense_spec(n_in=48, n_out=12, seed=0):
    rng = np.random.default_rng(seed)
    return make_dense_spec(
        weights=rng.integers(-8, 9, (n_in, n_out)).astype(np.int8),
        bias=rng.integers(-100, 100, n_out).astype(np.int32),
        mult=rng.integers(50, 200, n_out).astype(np.int16),
        shift=10, act_in_width=2, act_out_width=2, relu=True,
    )


def _input(spec, seed=1):
    rng = np.random.default_rng(seed)
    lo, hi = spec.act_in_range()
    return rng.integers(lo, hi + 1, spec.n_in).astype(np.int64)


def _build(generate, spec):
    """Two identical images of one kernel, one per engine run."""
    images = []
    for _ in range(2):
        image = generate(spec)
        images.append(image)
    return images


def _assert_bit_exact(generate, spec, seed=1):
    x = _input(spec, seed)
    image_fast, image_ref = _build(generate, spec)
    for image in (image_fast, image_ref):
        image.write_input(x)
    fast = image_fast.run(engine="fastpath")
    ref = image_ref.run(engine="interpreter")
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    assert fast.registers == ref.registers
    assert fast.op_counts == ref.op_counts
    out_fast = image_fast.read_output()
    out_ref = image_ref.read_output()
    np.testing.assert_array_equal(out_fast, out_ref)
    np.testing.assert_array_equal(out_fast, layer_forward(spec, x))
    for region_fast, region_ref in zip(
        image_fast.memory.regions, image_ref.memory.regions
    ):
        assert region_fast.loads == region_ref.loads
        assert region_fast.stores == region_ref.stores
        assert region_fast.bytes_loaded == region_ref.bytes_loaded
        assert region_fast.bytes_stored == region_ref.bytes_stored
    return fast


class TestKernelEncodingsBitExact:
    def test_dense(self):
        _assert_bit_exact(generate_dense, _dense_spec())

    @pytest.mark.parametrize("unroll", [2, 4])
    def test_dense_unrolled(self, unroll):
        _assert_bit_exact(
            lambda spec: generate_dense_unrolled(spec, unroll=unroll),
            _dense_spec(),
        )

    @pytest.mark.parametrize("format_name", SPARSE_FORMATS)
    def test_sparse(self, format_name):
        _assert_bit_exact(
            lambda spec: generate_sparse(spec, format_name), _spec()
        )

    @pytest.mark.parametrize("format_name", SPARSE_FORMATS)
    def test_sparse_denser_matrix(self, format_name):
        # A denser matrix changes the encodings' inner-loop structure
        # (longer runs, fuller blocks); re-check exactness there too.
        _assert_bit_exact(
            lambda spec: generate_sparse(spec, format_name),
            _spec(density=0.5, seed=3),
            seed=4,
        )

    def test_kernels_translate_rather_than_fall_back(self):
        # The speedup claim is meaningless if kernels silently fall back
        # to the interpreter: assert the translator accepts them.
        cases = [
            (generate_dense, _dense_spec()),
            (lambda spec: generate_dense_unrolled(spec, unroll=4),
             _dense_spec()),
        ] + [
            ((lambda spec, f=f: generate_sparse(spec, f)), _spec())
            for f in SPARSE_FORMATS
        ]
        for make, spec in cases:
            image = make(spec)
            image.write_input(_input(spec))
            cpu = make_cpu(image.memory, engine="fastpath")
            assert isinstance(cpu, FastCPU)
            cpu.run(image.program)
            assert cpu.last_engine == "fastpath"
