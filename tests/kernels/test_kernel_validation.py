"""The three-backend validation: reference == interpreter == cost model.

These tests are the foundation the benchmark suite rests on: every kernel
is executed on the ISA interpreter and must produce bit-identical outputs
to the NumPy reference AND exactly the cycle count the analytical model
predicts.  Randomized matrices (fixed seeds + hypothesis) cover width
promotions, empty columns, and both activation widths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import ref
from repro.kernels.codegen_cnn import ConvKernelSpec, count_conv, \
    generate_conv
from repro.kernels.codegen_dense import count_dense, generate_dense
from repro.kernels.codegen_sparse import (
    SPARSE_FORMATS,
    count_sparse,
    generate_sparse,
)
from repro.kernels.spec import make_dense_spec, make_neuroc_spec
from repro.mcu.board import STM32F072RB

COSTS = STM32F072RB.costs


def random_neuroc_spec(rng, n_in=None, n_out=None, aw=None, relu=None,
                       per_neuron=None, ow=2):
    n_in = n_in or int(rng.integers(3, 120))
    n_out = n_out or int(rng.integers(1, 24))
    density = rng.uniform(0.05, 0.5)
    adjacency = rng.choice(
        [-1, 0, 1], size=(n_in, n_out),
        p=[density / 2, 1 - density, density / 2],
    ).astype(np.int8)
    per_neuron = rng.random() < 0.5 if per_neuron is None else per_neuron
    mult = (
        rng.integers(30, 200, n_out).astype(np.int16)
        if per_neuron else int(rng.integers(30, 200))
    )
    return make_neuroc_spec(
        adjacency=adjacency,
        bias=rng.integers(-100, 100, n_out).astype(np.int32),
        mult=mult,
        shift=9,
        act_in_width=aw or int(rng.choice([1, 2])),
        act_out_width=ow,
        relu=bool(rng.random() < 0.5) if relu is None else relu,
    )


def assert_three_way(spec, fmt, x, **kwargs):
    expected = ref.layer_forward(spec, x)
    image = generate_sparse(spec, fmt, **kwargs)
    image.write_input(x)
    result = image.run()
    got = image.read_output()
    assert np.array_equal(got, expected), f"{fmt}: wrong output"
    analytic = count_sparse(spec, fmt, **kwargs)
    assert result.cycles == analytic.cycles(COSTS), f"{fmt}: cycle mismatch"
    assert result.instructions == analytic.instructions


@pytest.mark.parametrize("fmt", SPARSE_FORMATS)
@pytest.mark.parametrize("seed", range(4))
def test_sparse_kernels_three_way(fmt, seed):
    rng = np.random.default_rng(seed)
    spec = random_neuroc_spec(rng)
    x = rng.integers(-60, 60, spec.n_in)
    kwargs = {"block_size": int(rng.choice([32, 64, 256]))} \
        if fmt == "block" else {}
    assert_three_way(spec, fmt, x, **kwargs)


@pytest.mark.parametrize("fmt", SPARSE_FORMATS)
def test_sparse_kernels_with_empty_columns(fmt):
    rng = np.random.default_rng(11)
    adjacency = np.zeros((30, 6), dtype=np.int8)
    adjacency[[2, 7], 0] = 1       # cols 1..4 empty, col 5 negative only
    adjacency[[3, 9, 20], 5] = -1
    spec = make_neuroc_spec(
        adjacency, rng.integers(-50, 50, 6).astype(np.int32),
        rng.integers(30, 100, 6).astype(np.int16), shift=8,
        act_in_width=2, act_out_width=2, relu=True,
    )
    x = rng.integers(-40, 40, 30)
    assert_three_way(spec, fmt, x)


@pytest.mark.parametrize("fmt", SPARSE_FORMATS)
def test_sparse_kernels_asymmetric_polarity_widths(fmt):
    # pos fits 8-bit everything while neg promotes to 16-bit: the
    # regression where kernels read the wrong width for one polarity.
    rng = np.random.default_rng(5)
    adjacency = np.zeros((400, 4), dtype=np.int8)
    adjacency[:3, :] = 1                      # few positive, low indices
    neg_rows = rng.choice(400, 300, replace=False)
    adjacency[neg_rows, 1] = -1               # many negative, high indices
    spec = make_neuroc_spec(
        adjacency, rng.integers(-50, 50, 4).astype(np.int32),
        int(rng.integers(30, 90)), shift=8,
        act_in_width=1, act_out_width=2, relu=False,
    )
    x = rng.integers(-30, 30, 400)
    assert_three_way(spec, fmt, x)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_sparse_kernels_property(data):
    matrix = data.draw(
        hnp.arrays(
            np.int8,
            st.tuples(st.integers(1, 40), st.integers(1, 8)),
            elements=st.sampled_from([-1, 0, 1]),
        )
    )
    n_in, n_out = matrix.shape
    rng = np.random.default_rng(0)
    spec = make_neuroc_spec(
        matrix, rng.integers(-20, 20, n_out).astype(np.int32),
        rng.integers(20, 60, n_out).astype(np.int16), shift=8,
        act_in_width=2, act_out_width=2,
        relu=data.draw(st.booleans()),
    )
    x = np.asarray(
        data.draw(
            st.lists(
                st.integers(-50, 50), min_size=n_in, max_size=n_in
            )
        )
    )
    for fmt in SPARSE_FORMATS:
        assert_three_way(spec, fmt, x)


@pytest.mark.parametrize("aw,ow,relu,mult", [
    (1, 2, True, 40),
    (2, 4, False, None),
    (2, 1, True, 25),
])
def test_dense_kernel_three_way(aw, ow, relu, mult):
    rng = np.random.default_rng(3)
    n_in, n_out = 23, 7
    spec = make_dense_spec(
        rng.integers(-30, 30, (n_in, n_out)).astype(np.int8),
        rng.integers(-80, 80, n_out).astype(np.int32),
        mult, shift=9 if mult else 0,
        act_in_width=aw, act_out_width=ow, relu=relu,
    )
    x = rng.integers(-50, 50, n_in)
    expected = ref.layer_forward(spec, x)
    image = generate_dense(spec)
    image.write_input(x)
    result = image.run()
    assert np.array_equal(image.read_output(), expected)
    analytic = count_dense(spec)
    assert result.cycles == analytic.cycles(COSTS)


def test_dense_kernel_rejects_sparse_spec():
    from repro.errors import ConfigurationError
    rng = np.random.default_rng(0)
    spec = random_neuroc_spec(rng)
    with pytest.raises(ConfigurationError):
        generate_dense(spec)


@pytest.mark.parametrize("n,s,k,relu", [(8, 3, 2, True), (10, 5, 3, False)])
def test_conv_kernel_three_way(n, s, k, relu):
    rng = np.random.default_rng(7)
    spec = ConvKernelSpec(
        image_size=n, kernel_size=s, num_filters=k,
        weights=rng.integers(-10, 10, (k, s, s)).astype(np.int8),
        bias=rng.integers(-50, 50, k).astype(np.int32),
        relu=relu,
    )
    x = rng.integers(-40, 50, n * n)
    expected = ref.conv2d_forward(x, n, spec.weights, spec.bias,
                                  relu=relu).reshape(-1)
    image = generate_conv(spec)
    image.write_input(x)
    result = image.run()
    assert np.array_equal(image.read_output(), expected)
    analytic = count_conv(spec)
    assert result.cycles == analytic.cycles(COSTS)
    assert result.instructions == analytic.instructions


def test_latency_is_input_independent():
    """§3: 'execution time is entirely predictable ... no data-dependent
    variation'.  Two very different inputs must cost identical cycles."""
    rng = np.random.default_rng(13)
    spec = random_neuroc_spec(rng, n_in=60, n_out=10, aw=1, relu=True,
                              per_neuron=True)
    for fmt in SPARSE_FORMATS:
        cycles = set()
        for fill in (0, 1, -1):
            image = generate_sparse(spec, fmt)
            image.write_input(np.full(60, fill))
            cycles.add(image.run().cycles)
        assert len(cycles) == 1, fmt
