"""Memory-traffic invariants, measured with the region access counters.

§4.1 argues the encoding determines the access pattern.  These tests pin
the pattern exactly: each kernel touches each input connection exactly
once, streams its metadata arrays exactly once, and the block format's
extra RAM traffic is precisely its multi-pass partial-sum parking.
"""

import numpy as np
import pytest

from repro.kernels.codegen_sparse import encode_for_kernel, generate_sparse
from repro.kernels.spec import make_neuroc_spec


@pytest.fixture()
def spec(rng):
    adjacency = rng.choice(
        [-1, 0, 1], (120, 10), p=[0.08, 0.84, 0.08]
    ).astype(np.int8)
    return make_neuroc_spec(
        adjacency, rng.integers(-50, 50, 10).astype(np.int32),
        rng.integers(30, 90, 10).astype(np.int16), shift=8,
        act_in_width=2, act_out_width=2, relu=True,
    )


def _run(spec, fmt, rng, **kwargs):
    image = generate_sparse(spec, fmt, **kwargs)
    image.write_input(rng.integers(-40, 40, spec.n_in))
    image.memory.reset_counters()
    image.run()
    return image


@pytest.mark.parametrize("fmt", ["csc", "delta", "mixed"])
def test_single_pass_formats_read_inputs_once_per_connection(
    fmt, spec, rng
):
    image = _run(spec, fmt, rng)
    ram = image.memory.region("ram")
    nnz = int(np.count_nonzero(spec.ternary_matrix))
    # Every non-zero connection loads its input exactly once; nothing
    # else in RAM is read by these kernels.
    assert ram.loads == nnz
    # One output store per neuron.
    assert ram.stores == spec.n_out


def test_block_format_ram_traffic_is_input_plus_partial_sums(spec, rng):
    encoding = encode_for_kernel(spec, "block", block_size=32)
    image = _run(spec, "block", rng, block_size=32)
    ram = image.memory.region("ram")
    nnz = encoding.nnz
    block_cols = encoding.n_blocks * spec.n_out
    # Loads: one per connection + the partial-sum read-modify-write per
    # (block, column) + the phase-3 read per column.
    assert ram.loads == nnz + block_cols + spec.n_out
    # Stores: phase-1 clear + per-(block, column) write-back + outputs.
    assert ram.stores == spec.n_out + block_cols + spec.n_out


@pytest.mark.parametrize("fmt", ["csc", "delta", "mixed", "block"])
def test_flash_data_is_streamed_not_rescanned(fmt, spec, rng):
    """Total flash bytes loaded may not exceed the stored connectivity
    plus per-column tables — i.e. the kernel never re-reads its arrays."""
    encoding = encode_for_kernel(spec, fmt)
    image = _run(spec, fmt, rng)
    flash = image.memory.region("flash")
    tables = 4 * spec.n_out + 2 * spec.n_out          # bias + mult
    budget = encoding.size_bytes() + tables
    if fmt == "csc":
        # CSC reads pointers[j] and pointers[j+1] per column: interior
        # pointer entries are legitimately read twice.
        budget += 2 * (spec.n_out + 1) * 2
    assert flash.bytes_loaded <= budget


def test_input_region_not_written_by_kernels(spec, rng):
    """Kernels must never write the input buffer (the §4.1 static-buffer
    discipline; also the regression guard for buffer overlap bugs)."""
    for fmt in ("csc", "delta", "mixed", "block"):
        image = generate_sparse(spec, fmt)
        x = rng.integers(-40, 40, spec.n_in)
        image.write_input(x)
        image.run()
        back = image.memory.read_array(
            image.input_addr, spec.n_in, spec.act_in_width, signed=True
        )
        assert np.array_equal(back, x.astype(back.dtype)), fmt
