"""Reference-kernel semantics and OpCount arithmetic."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.kernels.opcount import OpCount, countdown_loop
from repro.kernels.ref import (
    conv_macc_count,
    fc_macc_count,
    im2col,
    layer_forward,
    model_forward,
    model_predict,
)
from repro.kernels.spec import (
    LayerKernelSpec,
    make_dense_spec,
    make_neuroc_spec,
)
from repro.mcu.cpu import CycleCosts


class TestSpecValidation:
    def test_requires_exactly_one_matrix(self):
        with pytest.raises(Exception):
            LayerKernelSpec(
                n_in=2, n_out=2, act_in_width=1, act_out_width=1,
                bias=np.zeros(2, np.int32), relu=True, mult=1,
            )

    def test_raw_output_requires_width_4(self):
        adjacency = np.ones((2, 2), dtype=np.int8)
        with pytest.raises(Exception):
            make_neuroc_spec(adjacency, np.zeros(2, np.int32), mult=None,
                             act_out_width=1)

    def test_requant_output_must_be_narrow(self):
        adjacency = np.ones((2, 2), dtype=np.int8)
        with pytest.raises(Exception):
            make_neuroc_spec(adjacency, np.zeros(2, np.int32), mult=5,
                             act_out_width=4)


class TestLayerForward:
    def test_equation_one_order(self):
        # out = ((acc * mult) >> shift) + bias, then ReLU.
        adjacency = np.array([[1], [1]], dtype=np.int8)
        spec = make_neuroc_spec(
            adjacency, bias=np.array([-5], dtype=np.int32),
            mult=np.array([4], dtype=np.int16), shift=1,
            act_in_width=1, act_out_width=2, relu=True,
        )
        out = layer_forward(spec, np.array([3, 4]))   # acc=7
        assert out[0] == max((7 * 4 >> 1) - 5, 0)     # 14 - 5 = 9

    def test_negative_mult_supported(self):
        # w_j < 0 must work (the Eq.-1 restructure's whole point).
        adjacency = np.array([[1]], dtype=np.int8)
        spec = make_neuroc_spec(
            adjacency, bias=np.array([100], dtype=np.int32),
            mult=np.array([-8], dtype=np.int16), shift=0,
            act_in_width=1, act_out_width=2, relu=True,
        )
        assert layer_forward(spec, np.array([5]))[0] == 60  # -40+100

    def test_floor_shift_for_negative_products(self):
        adjacency = np.array([[1]], dtype=np.int8)
        spec = make_neuroc_spec(
            adjacency, bias=np.array([0], dtype=np.int32),
            mult=np.array([1], dtype=np.int16), shift=1,
            act_in_width=1, act_out_width=2, relu=False,
        )
        assert layer_forward(spec, np.array([-3]))[0] == -2  # floor(-1.5)

    def test_saturation_clamps_relu_outputs(self):
        adjacency = np.ones((4, 1), dtype=np.int8)
        spec = make_neuroc_spec(
            adjacency, bias=np.array([0], dtype=np.int32),
            mult=np.array([100], dtype=np.int16), shift=0,
            act_in_width=1, act_out_width=1, relu=True,
        )
        out = layer_forward(spec, np.array([100, 100, 100, 100]))
        assert out[0] == 127  # saturated, not wrapped

    def test_out_of_range_input_rejected(self):
        adjacency = np.ones((1, 1), dtype=np.int8)
        spec = make_neuroc_spec(adjacency, np.zeros(1, np.int32),
                                mult=None, act_out_width=4, relu=False)
        with pytest.raises(QuantizationError):
            layer_forward(spec, np.array([300]))  # beyond int8

    def test_int32_overflow_detected(self):
        weights = np.full((1, 1), 127, dtype=np.int8)
        spec = make_dense_spec(
            weights, np.array([2**31 - 10], dtype=np.int32), mult=None,
            act_out_width=4, relu=False,
        )
        with pytest.raises(QuantizationError, match="int32"):
            layer_forward(spec, np.array([127]))

    def test_batch_and_single_row_agree(self, rng):
        adjacency = rng.choice([-1, 0, 1], (10, 3)).astype(np.int8)
        spec = make_neuroc_spec(
            adjacency, rng.integers(-10, 10, 3).astype(np.int32),
            mult=None, act_out_width=4, relu=False,
        )
        x = rng.integers(-20, 20, (4, 10))
        batch = model_forward([spec], x)
        rows = np.stack([layer_forward(spec, row) for row in x])
        assert np.array_equal(batch, rows)

    def test_model_predict_argmax(self, rng):
        adjacency = np.eye(3, dtype=np.int8)
        spec = make_neuroc_spec(adjacency, np.zeros(3, np.int32),
                                mult=None, act_out_width=4, relu=False)
        assert model_predict([spec], np.array([5, 9, 1])) == 1


class TestIm2col:
    def test_matches_manual_window(self):
        x = np.arange(16)
        columns = im2col(x, 4, 2)
        assert columns.shape == (4, 9)
        # Output position (0, 0): rows 0-1, cols 0-1.
        assert list(columns[:, 0]) == [0, 1, 4, 5]
        # Output position (2, 2): rows 2-3, cols 2-3.
        assert list(columns[:, 8]) == [10, 11, 14, 15]

    def test_shape_validation(self):
        with pytest.raises(QuantizationError):
            im2col(np.zeros(10), 4, 2)
        with pytest.raises(QuantizationError):
            im2col(np.zeros(16), 4, 5)

    def test_macc_formulas(self):
        # Eq. 7 and Eq. 8.
        assert conv_macc_count(k=8, c=1, s=3, m=14) == 8 * 9 * 196
        assert fc_macc_count(256, 72) == 256 * 72


class TestOpCount:
    def test_addition_and_scaling(self):
        a = OpCount.block(alu=2, load=1)
        b = OpCount.block(store=1, branch_taken=3)
        total = a + b
        assert total.alu == 2 and total.load == 1 and total.store == 1
        assert a.scaled(4).alu == 8
        assert a.scaled(4).halt == 0

    def test_cycles_pricing(self):
        count = OpCount(alu=3, mul=2, load=1, store=1,
                        branch_taken=1, branch_not_taken=1, halt=1)
        costs = CycleCosts()
        expected = 3 + 2 + 2 + 2 + 3 + 1 + 1
        assert count.cycles(costs) == expected

    def test_fetch_extra_pricing(self):
        count = OpCount(alu=5, halt=1)
        assert count.cycles(CycleCosts(fetch_extra=2)) == (
            5 + 1 + 2 * count.instructions
        )

    def test_countdown_loop_branch_accounting(self):
        body = OpCount.block(load=1)
        loop = countdown_loop(body, 5)
        assert loop.branch_taken == 4
        assert loop.branch_not_taken == 1
        assert loop.alu == 5  # the SUBSIs
        assert loop.load == 5
