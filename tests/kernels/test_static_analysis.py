"""The §4.1 static-control-flow verifier, on hand-built and real kernels."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.kernels.codegen_cnn import ConvKernelSpec, generate_conv
from repro.kernels.codegen_dense import generate_dense
from repro.kernels.codegen_sparse import SPARSE_FORMATS, generate_sparse
from repro.kernels.codegen_unrolled import generate_dense_unrolled
from repro.kernels.spec import make_dense_spec, make_neuroc_spec
from repro.kernels.static_analysis import verify_static_control_flow
from repro.mcu.isa import Assembler, Reg

RAM = 0x2000_0000


class TestHandBuiltPrograms:
    def test_clean_countdown_loop_passes(self):
        asm = Assembler("clean")
        asm.movi(Reg.R0, 10)
        asm.label("loop")
        asm.subsi(Reg.R0, Reg.R0, 1)
        asm.bgt("loop")
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert result.control_flow_is_input_independent

    def test_branch_on_loaded_input_detected(self):
        asm = Assembler("dirty")
        asm.movi(Reg.R0, RAM)       # points into the input buffer
        asm.ldrsb(Reg.R1, Reg.R0, 0)
        asm.cmpi(Reg.R1, 0)         # flags now depend on the input
        asm.beq("skip")
        asm.movi(Reg.R2, 1)
        asm.label("skip")
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert not result.control_flow_is_input_independent
        assert result.violations[0].index == 2
        with pytest.raises(ExecutionError, match="discipline"):
            result.require_clean()

    def test_taint_propagates_through_arithmetic(self):
        asm = Assembler("propagated")
        asm.movi(Reg.R0, RAM)
        asm.ldrsh(Reg.R1, Reg.R0, 0)
        asm.add(Reg.R2, Reg.R1, Reg.R1)   # still input-derived
        asm.subsi(Reg.R2, Reg.R2, 1)      # flag-setting on tainted data
        asm.bgt("end")
        asm.label("end")
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert not result.control_flow_is_input_independent

    def test_pointer_bump_into_input_taints_loads(self):
        # Fig. 4's addressing: pointer = base + offset, then load.
        asm = Assembler("ptr")
        asm.movi(Reg.R0, RAM)             # base into input
        asm.movi(Reg.R1, 4)
        asm.add(Reg.R2, Reg.R0, Reg.R1)   # pointer arithmetic
        asm.ldrsh(Reg.R3, Reg.R2, 0)      # tainted load
        asm.cmpi(Reg.R3, 0)
        asm.beq("end")
        asm.label("end")
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert not result.control_flow_is_input_independent

    def test_flash_driven_loop_bounds_are_allowed(self):
        # Counts loaded from flash drive loops: input-independent.
        flash = 0x0800_0000
        asm = Assembler("counts")
        asm.movi(Reg.R0, flash)
        asm.ldrb(Reg.R1, Reg.R0, 0)       # a count, not activation data
        asm.label("loop")
        asm.subsi(Reg.R1, Reg.R1, 1)
        asm.bgt("loop")
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert result.control_flow_is_input_independent

    def test_tainted_store_base_detected(self):
        # Store address derived from input data: control flow is static,
        # but the memory-traffic pattern would depend on the input.
        asm = Assembler("scatter")
        asm.movi(Reg.R0, RAM)
        asm.ldrsb(Reg.R1, Reg.R0, 0)        # input byte
        asm.movi(Reg.R2, RAM + 64)
        asm.add(Reg.R2, Reg.R2, Reg.R1)     # base = table + input
        asm.movi(Reg.R3, 1)
        asm.strb(Reg.R3, Reg.R2, 0)
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert result.control_flow_is_input_independent
        assert not result.store_addresses_are_input_independent
        assert not result.ok
        assert result.violations[0].index == 5
        with pytest.raises(ExecutionError, match="discipline"):
            result.require_clean()

    def test_tainted_store_index_register_detected(self):
        # Regression: a tainted *index* register (reg-offset store) used
        # to slip through when only the base register was inspected.
        asm = Assembler("scatter-index")
        asm.movi(Reg.R0, RAM)
        asm.ldrsb(Reg.R1, Reg.R0, 0)        # input byte
        asm.movi(Reg.R2, RAM + 64)
        asm.movi(Reg.R3, 1)
        asm.strb(Reg.R3, Reg.R2, Reg.R1)    # offset register is tainted
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert not result.store_addresses_are_input_independent
        assert result.violations[0].index == 4

    def test_movi_clears_previous_taint(self):
        asm = Assembler("cleared")
        asm.movi(Reg.R0, RAM)
        asm.ldrsb(Reg.R1, Reg.R0, 0)
        asm.movi(Reg.R1, 5)               # overwritten with a constant
        asm.cmpi(Reg.R1, 0)
        asm.beq("end")
        asm.label("end")
        asm.halt()
        result = verify_static_control_flow(asm.assemble(), RAM, 64)
        assert result.control_flow_is_input_independent


def _neuroc_spec(rng):
    adjacency = rng.choice(
        [-1, 0, 1], (60, 8), p=[0.1, 0.8, 0.1]
    ).astype(np.int8)
    return make_neuroc_spec(
        adjacency, rng.integers(-40, 40, 8).astype(np.int32),
        rng.integers(30, 90, 8).astype(np.int16), shift=8,
        act_in_width=2, act_out_width=2, relu=True,
    )


class TestGeneratedKernels:
    """Every generated kernel must satisfy §4.1 — including the branchless
    ReLU and saturation paths, which is exactly what they exist for."""

    @pytest.mark.parametrize("fmt", SPARSE_FORMATS)
    def test_sparse_kernels_verified(self, fmt, rng):
        spec = _neuroc_spec(rng)
        image = generate_sparse(spec, fmt)
        ram = image.memory.region("ram")
        result = verify_static_control_flow(
            image.program,
            image.input_addr,
            spec.n_in * spec.act_in_width,
            # The block kernel's partial sums are input-derived too.
            tainted_regions=((ram.base, ram.end),),
        )
        result.require_clean()
        # The only input-derived stores are activations/partial sums.
        assert result.tainted_store_sites >= 1

    def test_dense_kernel_verified(self, rng):
        spec = make_dense_spec(
            rng.integers(-30, 30, (40, 6)).astype(np.int8),
            rng.integers(-50, 50, 6).astype(np.int32),
            40, shift=9, act_in_width=1, act_out_width=2, relu=True,
        )
        image = generate_dense(spec)
        verify_static_control_flow(
            image.program, image.input_addr, 40
        ).require_clean()

    def test_unrolled_kernel_verified(self, rng):
        spec = make_dense_spec(
            rng.integers(-30, 30, (40, 6)).astype(np.int8),
            rng.integers(-50, 50, 6).astype(np.int32),
            40, shift=9, act_in_width=1, act_out_width=2, relu=True,
        )
        image = generate_dense_unrolled(spec, unroll=4)
        verify_static_control_flow(
            image.program, image.input_addr, 40
        ).require_clean()

    def test_conv_kernel_verified(self, rng):
        spec = ConvKernelSpec(
            image_size=8, kernel_size=3, num_filters=2,
            weights=rng.integers(-10, 10, (2, 3, 3)).astype(np.int8),
            bias=rng.integers(-20, 20, 2).astype(np.int32),
        )
        image = generate_conv(spec)
        ram = image.memory.region("ram")
        verify_static_control_flow(
            image.program, image.input_addr, 64 * 2,
            tainted_regions=((ram.base, ram.end),),  # im2col buffer
        ).require_clean()
