"""Unrolled dense kernel: three-way validation and trade-off properties."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels import ref
from repro.kernels.codegen_dense import count_dense
from repro.kernels.codegen_unrolled import (
    count_dense_unrolled,
    generate_dense_unrolled,
)
from repro.kernels.spec import make_dense_spec
from repro.mcu.board import STM32F072RB

COSTS = STM32F072RB.costs


def _spec(rng, n_in=40, n_out=6):
    return make_dense_spec(
        rng.integers(-30, 30, (n_in, n_out)).astype(np.int8),
        rng.integers(-50, 50, n_out).astype(np.int32),
        40, shift=9, act_in_width=1, act_out_width=2, relu=True,
    )


@pytest.mark.parametrize("n_in", [7, 16, 23, 40])
@pytest.mark.parametrize("unroll", [1, 2, 4, 8])
def test_three_way_validation(n_in, unroll, rng):
    spec = _spec(rng, n_in=n_in)
    x = rng.integers(-50, 50, n_in)
    image = generate_dense_unrolled(spec, unroll=unroll)
    image.write_input(x)
    result = image.run()
    assert np.array_equal(image.read_output(),
                          ref.layer_forward(spec, x))
    analytic = count_dense_unrolled(spec, unroll)
    assert result.cycles == analytic.cycles(COSTS)
    assert result.instructions == analytic.instructions


def test_unroll_one_matches_plain_dense_cycles(rng):
    spec = _spec(rng)
    plain = count_dense(spec).cycles(COSTS)
    unrolled = count_dense_unrolled(spec, unroll=1).cycles(COSTS)
    # Same loop structure (the rolled kernel counts elements, the
    # unrolled-x1 kernel counts iterations of one element each).
    assert unrolled == plain


def test_unrolling_trades_flash_for_cycles(rng):
    spec = _spec(rng, n_in=64, n_out=16)
    cycles, text = [], []
    for unroll in (1, 2, 4, 8):
        image = generate_dense_unrolled(spec, unroll=unroll)
        cycles.append(count_dense_unrolled(spec, unroll).cycles(COSTS))
        text.append(image.program.code_size_bytes())
    assert cycles == sorted(cycles, reverse=True)  # more unroll -> faster
    assert text == sorted(text)                    # ... and bigger code


def test_remainder_loop_handles_non_divisible_sizes(rng):
    spec = _spec(rng, n_in=13)  # 13 = 3*4 + 1
    x = rng.integers(-50, 50, 13)
    image = generate_dense_unrolled(spec, unroll=4)
    image.write_input(x)
    image.run()
    assert np.array_equal(image.read_output(),
                          ref.layer_forward(spec, x))


def test_invalid_unroll(rng):
    spec = _spec(rng)
    with pytest.raises(ConfigurationError):
        generate_dense_unrolled(spec, unroll=0)
    with pytest.raises(ConfigurationError):
        count_dense_unrolled(spec, unroll=-1)
