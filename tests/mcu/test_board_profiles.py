"""BoardProfile as the single source of hardware truth (ISSUE 9).

Profile fields, parameterized memory maps (including the RISC-V non-ARM
bases), ceiling deadline conversion, capability-gated engine tiers, and
Table 1 classification of all four reference profiles.
"""

import pytest

from repro.errors import ConfigurationError
from repro.mcu.board import (
    BOARD_PROFILES,
    CORTEX_M4_REFERENCE,
    CORTEX_M7_REFERENCE,
    RISCV_RV32IMC,
    STM32F072RB,
    BoardProfile,
    board_by_name,
    classify_board,
    format_board_profile_table,
)

ALL_BOARDS = tuple(BOARD_PROFILES.values())
BOARD_IDS = tuple(BOARD_PROFILES)


class TestProfiles:
    def test_registry_covers_all_four_classes(self):
        assert set(BOARD_PROFILES) == {
            "STM32F072RB", "Kinetis-K64F", "STM32H747XI", "FE310-G002",
        }
        for name, board in BOARD_PROFILES.items():
            assert board.name == name
            assert board_by_name(name) is board

    def test_unknown_board_is_typed(self):
        with pytest.raises(ConfigurationError, match="unknown board"):
            board_by_name("ESP32")

    def test_classification_spans_table1(self):
        assert classify_board(STM32F072RB).name == "Low"
        assert classify_board(CORTEX_M4_REFERENCE).name == "Medium"
        assert classify_board(CORTEX_M7_REFERENCE).name == "Advanced"
        # No FPU/DSP puts the RISC-V part in Low despite its clock.
        assert classify_board(RISCV_RV32IMC).name == "Low"

    def test_cost_tables_are_distinct(self):
        tables = {board.costs for board in ALL_BOARDS}
        assert len(tables) == len(ALL_BOARDS)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            BoardProfile("bad", "x", 0, 128, 16)
        with pytest.raises(ConfigurationError, match="positive"):
            BoardProfile("bad", "x", 1_000_000, 128, 0)
        with pytest.raises(ConfigurationError, match="overlap"):
            BoardProfile(
                "bad", "x", 1_000_000, 128, 16,
                flash_base=0x1000_0000, ram_base=0x1000_8000,
            )

    def test_profile_table_renders_every_board(self):
        table = format_board_profile_table()
        for name in BOARD_PROFILES:
            assert name in table
        assert "Advanced" in table


class TestMemoryMaps:
    @pytest.mark.parametrize("board", ALL_BOARDS, ids=BOARD_IDS)
    def test_map_follows_the_profile(self, board):
        memory = board.make_memory()
        flash = memory.region("flash")
        ram = memory.region("ram")
        assert flash.base == board.flash_base
        assert flash.size == board.flash_kb * 1024
        assert not flash.writable
        assert ram.base == board.ram_base
        assert ram.size == board.ram_kb * 1024
        assert ram.writable

    def test_riscv_map_is_not_the_arm_map(self):
        memory = RISCV_RV32IMC.make_memory()
        assert memory.region("flash").base == 0x2000_0000
        assert memory.region("ram").base == 0x8000_0000
        # The ARM RAM base lands inside the RISC-V *flash* window —
        # a store there must fault, proving the map really moved.
        from repro.errors import MemoryMapError

        with pytest.raises(MemoryMapError):
            memory.store(0x2000_0000, 4, 1)


class TestDeadlineConversion:
    @pytest.mark.parametrize("board", ALL_BOARDS, ids=BOARD_IDS)
    def test_round_trip_is_exact(self, board):
        for cycles in (1, 2, 3, 7, 1000, 999_983, 123_456_789):
            assert board.ms_to_cycles(board.cycles_to_ms(cycles)) == cycles

    def test_half_cycle_budget_rounds_up_not_to_even(self):
        """ISSUE-9 satellite (pre-fix failing): banker's round() turns a
        2.5-cycle deadline into a 2-cycle budget — under-admitting work
        that meets the wall-clock deadline.  Ceiling gives 3."""
        board = STM32F072RB          # 8 MHz: power-of-two, exact floats
        ms = 2.5 / board.clock_hz * 1e3
        assert round(2.5) == 2       # what the old conversion produced
        assert board.ms_to_cycles(ms) == 3

    def test_budget_always_covers_the_duration(self):
        for board in ALL_BOARDS:
            for cycles in (1, 9, 1234, 99_991):
                for frac in (0.25, 0.5, 0.75):
                    ms = board.cycles_to_ms(cycles) \
                        + frac * board.cycles_to_ms(1)
                    budget = board.ms_to_cycles(ms)
                    assert board.cycles_to_ms(budget) >= ms - 1e-12, (
                        board.name, cycles, frac,
                    )


class TestEngineGating:
    def test_all_reference_boards_host_every_tier(self):
        for board in ALL_BOARDS:
            assert board.supported_engines() == (
                "fastpath-v2", "fastpath", "interpreter"
            )
            assert board.resolve_engine("fastpath-v2") == "fastpath-v2"

    def test_no_multiplier_caps_at_tier1(self):
        soft_mul = BoardProfile(
            "ATSAMD09", "Cortex-M0+", 48_000_000, 64, 8, has_muls=False
        )
        assert soft_mul.supported_engines() == ("fastpath", "interpreter")
        assert soft_mul.resolve_engine("fastpath-v2") == "fastpath"
        assert soft_mul.resolve_engine("fastpath") == "fastpath"
        # Never upgrades: the interpreter stays the interpreter.
        assert soft_mul.resolve_engine("interpreter") == "interpreter"

    def test_unknown_engine_is_typed(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            STM32F072RB.resolve_engine("jit")

    def test_gated_deployment_degrades_bit_identically(self, trained_neuroc):
        from repro.deploy.artifact import DeployedModel

        soft_mul = BoardProfile(
            "ATSAMD09", "Cortex-M0+", 48_000_000, 128, 16, has_muls=False
        )
        gated = DeployedModel(
            trained_neuroc.quantized, "block", board=soft_mul,
            engine="fastpath-v2",
        )
        assert gated.engine == "fastpath"      # degraded, not rejected
        reference = DeployedModel(
            trained_neuroc.quantized, "block", board=soft_mul,
            engine="interpreter",
        )
        import numpy as np

        x = np.zeros(trained_neuroc.quantized.n_in)
        a, b = gated.infer(x), reference.infer(x)
        assert a.cycles == b.cycles
        assert np.array_equal(a.logits, b.logits)


class TestPerBoardDeployment:
    @pytest.mark.parametrize("board", ALL_BOARDS, ids=BOARD_IDS)
    def test_deploys_and_infers_on_every_board(
        self, board, trained_neuroc, digits_small
    ):
        from repro.deploy.artifact import DeployedModel

        deployed = DeployedModel(
            trained_neuroc.quantized, "block", board=board
        )
        x = digits_small.x_test[0]
        result = deployed.infer(x)
        reference = trained_neuroc.quantized.predict(x[None, :])[0]
        assert result.label == reference
        assert result.latency_ms == pytest.approx(
            board.cycles_to_ms(result.cycles)
        )

    def test_same_model_prices_differently_per_board(self, trained_neuroc):
        from repro.deploy.artifact import analytic_model_cycles

        cycles = {
            board.name: analytic_model_cycles(
                trained_neuroc.quantized, "block", board
            )
            for board in ALL_BOARDS
        }
        assert len(set(cycles.values())) > 1, cycles
