"""Interpreter semantics: ALU, memory, flags, branches, cycle accounting."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.mcu.cpu import CPU, CycleCosts
from repro.mcu.isa import Assembler, Reg
from repro.mcu.memory import MemoryMap

RAM = 0x2000_0000
FLASH = 0x0800_0000


def run(build, registers=None, costs=None, memory=None):
    """Assemble via ``build(asm)`` and execute."""
    asm = Assembler("t")
    build(asm)
    asm.halt()
    memory = memory or MemoryMap.stm32()
    return CPU(memory, costs=costs).run(asm.assemble(), registers), memory


class TestAlu:
    def test_movi_and_mov(self):
        result, _ = run(lambda a: (a.movi(Reg.R0, 42), a.mov(Reg.R1, Reg.R0)))
        assert result.reg(Reg.R1) == 42

    def test_add_sub_wrap_to_32_bits(self):
        def build(a):
            a.movi(Reg.R0, 0x7FFF_FFFF)
            a.addi(Reg.R1, Reg.R0, 1)       # overflow wraps
            a.subi(Reg.R2, Reg.R1, 1)
        result, _ = run(build)
        assert result.reg(Reg.R1) == -(1 << 31)
        assert result.reg(Reg.R2) == 0x7FFF_FFFF

    def test_mul_keeps_low_32_bits_signed(self):
        def build(a):
            a.movi(Reg.R0, -3)
            a.movi(Reg.R1, 7)
            a.mul(Reg.R2, Reg.R0, Reg.R1)
        result, _ = run(build)
        assert result.reg(Reg.R2) == -21

    def test_shifts(self):
        def build(a):
            a.movi(Reg.R0, -8)
            a.asri(Reg.R1, Reg.R0, 2)   # arithmetic: -2
            a.lsri(Reg.R2, Reg.R0, 28)  # logical on the wrapped pattern
            a.movi(Reg.R3, 3)
            a.lsli(Reg.R4, Reg.R3, 4)
        result, _ = run(build)
        assert result.reg(Reg.R1) == -2
        assert result.reg(Reg.R2) == 0xF
        assert result.reg(Reg.R4) == 48

    def test_bitwise(self):
        def build(a):
            a.movi(Reg.R0, 0b1100)
            a.movi(Reg.R1, 0b1010)
            a.and_(Reg.R2, Reg.R0, Reg.R1)
            a.orr(Reg.R3, Reg.R0, Reg.R1)
            a.eor(Reg.R4, Reg.R0, Reg.R1)
        result, _ = run(build)
        assert result.reg(Reg.R2) == 0b1000
        assert result.reg(Reg.R3) == 0b1110
        assert result.reg(Reg.R4) == 0b0110


class TestBranches:
    @pytest.mark.parametrize(
        "lhs,rhs,op_name,taken",
        [
            (1, 1, "beq", True),
            (1, 2, "beq", False),
            (1, 2, "bne", True),
            (-5, 3, "blt", True),
            (3, -5, "blt", False),
            (3, 3, "bge", True),
            (4, 3, "bgt", True),
            (3, 3, "bgt", False),
            (3, 3, "ble", True),
            (2, 3, "ble", True),
            (4, 3, "ble", False),
        ],
    )
    def test_signed_conditions(self, lhs, rhs, op_name, taken):
        def build(a):
            a.movi(Reg.R0, lhs)
            a.movi(Reg.R1, rhs)
            a.movi(Reg.R2, 0)
            a.cmp(Reg.R0, Reg.R1)
            getattr(a, op_name)("skip")
            a.movi(Reg.R2, 1)       # executed only when not taken
            a.label("skip")
        result, _ = run(build)
        assert result.reg(Reg.R2) == (0 if taken else 1)

    def test_blt_handles_subtraction_overflow(self):
        # lhs - rhs overflows 32 bits; N != V must still mean lhs < rhs.
        def build(a):
            a.movi(Reg.R0, -(1 << 31))
            a.movi(Reg.R1, (1 << 31) - 1)
            a.movi(Reg.R2, 0)
            a.cmp(Reg.R0, Reg.R1)
            a.bge("skip")
            a.movi(Reg.R2, 1)
            a.label("skip")
        result, _ = run(build)
        assert result.reg(Reg.R2) == 1  # lhs < rhs, BGE not taken

    def test_subsi_sets_flags_for_countdown(self):
        def build(a):
            a.movi(Reg.R0, 3)
            a.movi(Reg.R1, 0)
            a.label("loop")
            a.addi(Reg.R1, Reg.R1, 10)
            a.subsi(Reg.R0, Reg.R0, 1)
            a.bgt("loop")
        result, _ = run(build)
        assert result.reg(Reg.R1) == 30


class TestMemoryOps:
    def test_load_widths_and_sign_extension(self):
        memory = MemoryMap.stm32()
        memory.write_array(RAM, np.array([-1, 100], dtype=np.int8))
        memory.write_array(RAM + 4, np.array([-2], dtype=np.int16))

        def build(a):
            a.movi(Reg.R0, RAM)
            a.ldrsb(Reg.R1, Reg.R0, 0)
            a.ldrb(Reg.R2, Reg.R0, 0)
            a.ldrsh(Reg.R3, Reg.R0, 4)
            a.ldrh(Reg.R4, Reg.R0, 4)
        result, _ = run(build, memory=memory)
        assert result.reg(Reg.R1) == -1
        assert result.reg(Reg.R2) == 0xFF
        assert result.reg(Reg.R3) == -2
        assert result.reg(Reg.R4) == 0xFFFE

    def test_store_then_load_roundtrip(self):
        def build(a):
            a.movi(Reg.R0, RAM)
            a.movi(Reg.R1, -123456)
            a.str_(Reg.R1, Reg.R0, 0)
            a.ldr(Reg.R2, Reg.R0, 0)
        result, _ = run(build)
        assert result.reg(Reg.R2) == -123456

    def test_register_offset_addressing(self):
        memory = MemoryMap.stm32()
        memory.write_array(RAM, np.arange(10, dtype=np.int8))

        def build(a):
            a.movi(Reg.R0, RAM)
            a.movi(Reg.R1, 7)
            a.ldrsb(Reg.R2, Reg.R0, Reg.R1)
        result, _ = run(build, memory=memory)
        assert result.reg(Reg.R2) == 7

    def test_store_to_flash_raises(self):
        def build(a):
            a.movi(Reg.R0, FLASH)
            a.movi(Reg.R1, 1)
            a.strb(Reg.R1, Reg.R0, 0)
        from repro.errors import MemoryMapError
        with pytest.raises(MemoryMapError, match="read-only"):
            run(build)


class TestCycleAccounting:
    def test_costs_match_category_table(self):
        costs = CycleCosts()

        def build(a):
            a.movi(Reg.R0, RAM)   # 1
            a.movi(Reg.R1, 5)     # 1
            a.str_(Reg.R1, Reg.R0, 0)  # 2
            a.ldr(Reg.R2, Reg.R0, 0)   # 2
            a.mul(Reg.R3, Reg.R1, Reg.R1)  # 1
            a.cmpi(Reg.R1, 5)     # 1
            a.beq("end")          # 3 taken
            a.movi(Reg.R4, 9)
            a.label("end")
        result, _ = run(build, costs=costs)
        # 1+1+2+2+1+1+3 + halt(1)
        assert result.cycles == 12

    def test_fetch_extra_charges_every_instruction(self):
        def build(a):
            a.movi(Reg.R0, 1)
            a.movi(Reg.R1, 2)
        base, _ = run(build)
        slow, _ = run(build, costs=CycleCosts(fetch_extra=1))
        assert slow.cycles == base.cycles + slow.instructions

    def test_runaway_loop_detected(self):
        def build(a):
            a.label("forever")
            a.b("forever")
        asm = Assembler("runaway")
        build(asm)
        asm.halt()
        cpu = CPU(MemoryMap.stm32(), max_instructions=1000)
        with pytest.raises(ExecutionError, match="exceeded"):
            cpu.run(asm.assemble())

    def test_op_counts_recorded(self):
        result, _ = run(lambda a: (a.movi(Reg.R0, 1), a.movi(Reg.R1, 2)))
        from repro.mcu.isa import Op
        assert result.op_counts[Op.MOVI] == 2
        assert result.op_counts[Op.HALT] == 1
