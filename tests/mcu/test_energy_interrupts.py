"""Energy model and interrupt-preemption simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.kernels.codegen_sparse import generate_sparse
from repro.kernels.opcount import OpCount
from repro.kernels.spec import make_neuroc_spec
from repro.mcu.board import STM32F072RB
from repro.mcu.energy import (
    STM32F0_ENERGY,
    EnergyProfile,
    battery_life,
    inference_energy,
)
from repro.mcu.interrupts import (
    EXCEPTION_ENTRY_CYCLES,
    EXCEPTION_EXIT_CYCLES,
    InterruptSource,
    run_with_interrupts,
    worst_case_latency_ms,
)


def _spec(rng, n_in=50, n_out=8):
    adjacency = rng.choice([-1, 0, 1], (n_in, n_out),
                           p=[0.1, 0.8, 0.1]).astype(np.int8)
    return make_neuroc_spec(
        adjacency, rng.integers(-40, 40, n_out).astype(np.int32),
        rng.integers(30, 90, n_out).astype(np.int16), shift=8,
        act_in_width=1, act_out_width=1, relu=True,
    )


class TestEnergyModel:
    def test_energy_scales_with_cycles(self):
        small = OpCount.block(alu=1000)
        large = OpCount.block(alu=10_000)
        e_small = inference_energy(small).energy_uj
        e_large = inference_energy(large).energy_uj
        assert e_large == pytest.approx(10 * e_small, rel=0.01)

    def test_memory_heavy_workloads_cost_more(self):
        cycles_as_alu = OpCount.block(alu=2000)
        cycles_as_loads = OpCount.block(load=1000)  # same 2000 cycles
        assert (
            inference_energy(cycles_as_loads).energy_uj
            > inference_energy(cycles_as_alu).energy_uj
        )

    def test_flat_model_recovered_at_reference_mix(self):
        # One third memory cycles -> exactly the latency-proxy energy.
        count = OpCount.block(alu=4000, load=500, store=500)  # no halt
        report = inference_energy(count)
        board = STM32F072RB
        latency_s = report.cycles / board.clock_hz
        flat_uj = STM32F0_ENERGY.active_power_mw(board) * latency_s * 1e3
        assert report.energy_uj == pytest.approx(flat_uj, rel=1e-6)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyProfile(supply_volts=0.0)
        with pytest.raises(ConfigurationError):
            EnergyProfile(memory_cycle_weight=0.5)

    def test_battery_life_decreases_with_rate(self):
        count = OpCount(alu=100_000)
        slow = battery_life(count, inferences_per_hour=60)
        fast = battery_life(count, inferences_per_hour=3600)
        assert fast.battery_life_days < slow.battery_life_days
        assert slow.battery_life_days > 30  # a coin cell lasts months

    def test_battery_life_validation(self):
        with pytest.raises(ConfigurationError):
            battery_life(OpCount(alu=10), inferences_per_hour=-1)


class TestInterrupts:
    def test_preemption_never_changes_the_output(self, rng):
        spec = _spec(rng)
        x = rng.integers(-50, 50, spec.n_in)
        image_a = generate_sparse(spec, "mixed")
        image_a.write_input(x)
        clean = image_a.run()
        baseline = image_a.read_output()

        image_b = generate_sparse(spec, "mixed")
        preempted = run_with_interrupts(
            image_b, x, InterruptSource(period_cycles=500)
        )
        assert np.array_equal(preempted.output, baseline)
        assert preempted.inference_cycles == clean.cycles

    def test_interrupt_accounting(self, rng):
        spec = _spec(rng)
        x = rng.integers(-50, 50, spec.n_in)
        source = InterruptSource(period_cycles=1000, handler_cycles=100)
        image = generate_sparse(spec, "mixed")
        run = run_with_interrupts(image, x, source)
        per_event = (
            EXCEPTION_ENTRY_CYCLES + 100 + EXCEPTION_EXIT_CYCLES
        )
        assert run.interrupt_count == run.inference_cycles // 1000
        assert run.interrupt_cycles == run.interrupt_count * per_event
        assert run.total_cycles == (
            run.inference_cycles + run.interrupt_cycles
        )
        assert run.latency_inflation >= 1.0

    def test_latency_inflation_bounded_by_worst_case(self, rng):
        spec = _spec(rng)
        x = rng.integers(-50, 50, spec.n_in)
        source = InterruptSource(period_cycles=700)
        image = generate_sparse(spec, "mixed")
        run = run_with_interrupts(image, x, source)
        bound = worst_case_latency_ms(run.inference_cycles, source)
        assert run.latency_ms <= bound

    def test_stack_exhaustion_detected(self, rng):
        spec = _spec(rng)
        x = rng.integers(-50, 50, spec.n_in)
        image = generate_sparse(spec, "mixed")
        ram = image.memory.region("ram")
        ram.reserved = ram.size  # simulate a RAM-full deployment
        with pytest.raises(ExecutionError, match="stack"):
            run_with_interrupts(image, x, InterruptSource(500))

    def test_invalid_source(self):
        with pytest.raises(ConfigurationError):
            InterruptSource(period_cycles=0)
