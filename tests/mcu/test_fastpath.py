"""Differential harness: the fastpath engine vs the reference interpreter.

The fastpath contract is *bit-exactness* — same registers, memory bytes,
cycles, instruction counts, op counts, and per-region traffic counters as
:class:`~repro.mcu.cpu.CPU` on every accepted program, including error
paths.  This file enforces it with a seeded random-program fuzzer
(200+ generated programs covering ALU/flag/branch/memory interactions,
count-down loops, forward skips, and dead code), plus targeted tests for
exception exactness, translation caching, fallback, and per-block cycle
attribution.
"""

import os

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ExecutionError,
    MemoryMapError,
)
from repro.mcu.board import BOARD_PROFILES, STM32F072RB
from repro.mcu.cpu import CPU, CycleCosts
from repro.mcu.fastpath import (
    ENGINES,
    FastCPU,
    clear_translation_cache,
    make_cpu,
    translate,
    translate_v2,
    translation_cache_stats,
    why_declined,
)
from repro.mcu.isa import Assembler, Instr, Op, Program, Reg
from repro.mcu.memory import MemoryMap
from repro.mcu.profiler import Profiler

RAM = 0x2000_0000
FLASH = 0x0800_0000
#: Fuzzer working set in RAM bytes (all generated addresses stay inside).
SCRATCH = 256

#: Board the 220-seed fuzz runs against — CI matrixes over all four
#: profiles via REPRO_FUZZ_BOARD; the default keeps tier-1 runs on the
#: paper's M0 (byte-identical to the historical harness).
FUZZ_BOARD = BOARD_PROFILES[
    os.environ.get("REPRO_FUZZ_BOARD", STM32F072RB.name)
]

#: 32-bit boundary constants the fuzzer seeds registers/immediates with.
BOUNDARY = (
    0, 1, 2, -1, -2, 255, -128, 0x7FFF_FFFF, -(1 << 31), 0x8000_0000,
    0xFFFF_FFFF, 0x1_0000, -0x8000,
)


def run_both(program, registers=None, costs=None, ram_image=None,
             board=None):
    """Run on every engine with identical initial state; compare all.

    With ``board`` the program runs against that profile's memory map
    and (unless ``costs`` overrides it) cost table — the per-board
    exactness contract.  Default: the historical STM32 harness.
    """
    if board is not None and costs is None:
        costs = board.costs
    results = {}
    memories = {}
    for engine in ENGINES:
        memory = (
            board.make_memory() if board is not None else MemoryMap.stm32()
        )
        if ram_image is not None:
            memory.region("ram").data[: len(ram_image)] = ram_image
        cpu = make_cpu(memory, costs=costs, engine=engine)
        results[engine] = cpu.run(program, dict(registers or {}))
        if engine == "fastpath":
            assert isinstance(cpu, FastCPU)
            assert cpu.last_engine == "fastpath", (
                f"translator declined: "
                f"{why_declined(program, memory, costs)}"
            )
        memories[engine] = memory
    ref = results["interpreter"]
    for engine in ENGINES:
        if engine == "interpreter":
            continue
        fast = results[engine]
        assert fast.cycles == ref.cycles, engine
        assert fast.instructions == ref.instructions, engine
        assert fast.registers == ref.registers, engine
        assert fast.op_counts == ref.op_counts, engine
        for region_ref, region_fast in zip(
            memories["interpreter"].regions, memories[engine].regions
        ):
            assert bytes(region_fast.data) == bytes(region_ref.data)
            assert region_fast.loads == region_ref.loads
            assert region_fast.stores == region_ref.stores
            assert region_fast.bytes_loaded == region_ref.bytes_loaded
            assert region_fast.bytes_stored == region_ref.bytes_stored
    return ref


# -- the fuzzer -----------------------------------------------------------

WORK = (Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)
PTR = Reg.R7        # RAM base pointer, never clobbered
COUNTER = Reg.R6    # loop counter, written only by loop scaffolding
OFFSET = Reg.R8     # register-offset operand for reg-indexed accesses

_LOADS = ("ldr", "ldrh", "ldrsh", "ldrb", "ldrsb")
_STORES = ("str_", "strh", "strb")
_WIDTH = {"ldr": 4, "ldrh": 2, "ldrsh": 2, "ldrb": 1, "ldrsb": 1,
          "str_": 4, "strh": 2, "strb": 1}
_COND_BRANCHES = ("beq", "bne", "blt", "bge", "bgt", "ble")


def _emit_random_op(asm, rng, label_maker):
    """One random instruction (or short idiom) over the work registers."""
    choice = rng.integers(0, 10)
    rd = WORK[rng.integers(0, len(WORK))]
    rn = WORK[rng.integers(0, len(WORK))]
    rm = WORK[rng.integers(0, len(WORK))]
    imm = int(BOUNDARY[rng.integers(0, len(BOUNDARY))])
    if choice == 0:
        asm.movi(rd, imm)
    elif choice == 1:
        getattr(asm, rng.choice(("add", "sub", "mul", "and_", "orr",
                                 "eor")))(rd, rn, rm)
    elif choice == 2:
        getattr(asm, rng.choice(("addi", "subi")))(rd, rn, imm)
    elif choice == 3:
        getattr(asm, rng.choice(("lsli", "lsri", "asri")))(
            rd, rn, int(rng.integers(0, 32))
        )
    elif choice == 4:
        asm.mov(rd, rn)
    elif choice == 5:
        asm.subsi(rd, rn, imm)
    elif choice == 6:
        asm.cmp(rn, rm) if rng.integers(0, 2) else asm.cmpi(rn, imm)
    elif choice == 7:   # aligned load at an immediate offset
        name = rng.choice(_LOADS)
        width = _WIDTH[name]
        offset = int(rng.integers(0, SCRATCH // width)) * width
        getattr(asm, name)(rd, PTR, offset)
    elif choice == 8:   # store at an immediate offset
        name = rng.choice(_STORES)
        width = _WIDTH[name]
        offset = int(rng.integers(0, SCRATCH // width)) * width
        getattr(asm, name)(rd, PTR, offset)
    else:               # register-offset access
        name = rng.choice(_LOADS + _STORES)
        width = _WIDTH[name]
        asm.movi(OFFSET, int(rng.integers(0, SCRATCH // width)) * width)
        getattr(asm, name)(rd, PTR, OFFSET)


def _random_program(seed, ram_base=RAM):
    """A random, guaranteed-terminating program exercising the full ISA.

    ``ram_base`` is baked into the generated code (the scratch pointer
    is a MOVI immediate), so per-board fuzzing regenerates programs
    against each board's own RAM base.
    """
    rng = np.random.default_rng(seed)
    asm = Assembler(f"fuzz-{seed}")
    labels = iter(range(1000))

    def label_maker():
        return f"L{next(labels)}"

    asm.movi(PTR, ram_base)
    for segment in range(int(rng.integers(2, 5))):
        kind = rng.integers(0, 4)
        if kind == 0:      # count-down loop, 1..4 iterations
            top = label_maker()
            asm.movi(COUNTER, int(rng.integers(1, 5)))
            asm.label(top)
            for _ in range(int(rng.integers(2, 7))):
                _emit_random_op(asm, rng, label_maker)
            asm.subsi(COUNTER, COUNTER, 1)
            asm.bgt(top)
        elif kind == 1:    # data-dependent forward skip
            skip = label_maker()
            _emit_random_op(asm, rng, label_maker)
            if rng.integers(0, 2):
                asm.cmpi(WORK[rng.integers(0, len(WORK))],
                         int(BOUNDARY[rng.integers(0, len(BOUNDARY))]))
            else:
                asm.cmp(WORK[rng.integers(0, len(WORK))],
                        WORK[rng.integers(0, len(WORK))])
            getattr(asm, rng.choice(_COND_BRANCHES))(skip)
            for _ in range(int(rng.integers(1, 5))):
                _emit_random_op(asm, rng, label_maker)
            asm.label(skip)
        elif kind == 2:    # unconditional jump over dead code
            end = label_maker()
            asm.b(end)
            for _ in range(int(rng.integers(1, 4))):
                _emit_random_op(asm, rng, label_maker)
            asm.label(end)
        else:              # straight-line body
            for _ in range(int(rng.integers(3, 9))):
                _emit_random_op(asm, rng, label_maker)
    asm.halt()
    return asm.assemble()


def _random_state(seed):
    rng = np.random.default_rng(seed + 10_000)
    registers = {
        reg: int(BOUNDARY[rng.integers(0, len(BOUNDARY))])
        for reg in WORK
    }
    ram_image = bytes(rng.integers(0, 256, SCRATCH, dtype=np.uint8))
    costs = (
        CycleCosts(fetch_extra=1) if seed % 7 == 0
        else CycleCosts(load=3, store=3, branch_taken=4) if seed % 11 == 0
        else None
    )
    return registers, ram_image, costs


class TestFuzzDifferential:
    """ISSUE 3 acceptance: >= 200 seeded random programs, bit-exact.

    Runs against ``FUZZ_BOARD`` (REPRO_FUZZ_BOARD, default the M0):
    programs are regenerated against the board's RAM base and executed
    with the board's cost table, so CI can sweep all four profiles.
    """

    @pytest.mark.parametrize("seed", range(220))
    def test_random_program_bit_exact(self, seed):
        program = _random_program(seed, FUZZ_BOARD.ram_base)
        registers, ram_image, costs = _random_state(seed)
        run_both(
            program, registers=registers, costs=costs,
            ram_image=ram_image, board=FUZZ_BOARD,
        )

    def test_fuzzer_reaches_every_opcode(self):
        seen = set()
        for seed in range(220):
            for instr in _random_program(seed).instructions:
                seen.add(instr.op)
        assert seen == set(Op), f"missing: {set(Op) - seen}"


class TestCrossBoardExactness:
    """Tentpole acceptance: the engine-agreement contract holds on every
    board profile — non-ARM memory bases, wait states, slow multipliers
    and all.  A tier-1-sized subset of the fuzz seeds; CI runs the full
    220 per board via REPRO_FUZZ_BOARD."""

    @pytest.mark.parametrize(
        "board", BOARD_PROFILES.values(), ids=tuple(BOARD_PROFILES)
    )
    @pytest.mark.parametrize("seed", range(0, 60, 4))
    def test_every_board_bit_exact(self, board, seed):
        program = _random_program(seed, board.ram_base)
        registers, ram_image, _ = _random_state(seed)
        run_both(
            program, registers=registers, ram_image=ram_image, board=board
        )

    def test_cost_tables_actually_differ_across_boards(self):
        # The same program must be priced differently per board — the
        # signal the heterogeneous router runs on.
        program = _random_program(3, RAM)
        registers, ram_image, _ = _random_state(3)
        cycles = {
            name: run_both(
                program, registers=registers, ram_image=ram_image,
                board=board,
            ).cycles
            for name, board in BOARD_PROFILES.items()
            if board.ram_base == RAM
        }
        assert len(set(cycles.values())) > 1, cycles


class TestExceptionExactness:
    """Error paths must match: type, message, and prior side effects."""

    def _raises_identically(self, build, exc_type, registers=None):
        outcomes = {}
        memories = {}
        for engine in ENGINES:
            asm = Assembler("err")
            build(asm)
            asm.halt()
            memory = MemoryMap.stm32()
            cpu = make_cpu(memory, engine=engine)
            with pytest.raises(exc_type) as info:
                cpu.run(asm.assemble(), dict(registers or {}))
            outcomes[engine] = str(info.value)
            memories[engine] = memory
        assert outcomes["fastpath"] == outcomes["interpreter"]
        for ref, fast in zip(
            memories["interpreter"].regions, memories["fastpath"].regions
        ):
            assert bytes(fast.data) == bytes(ref.data)
            assert fast.loads == ref.loads
            assert fast.stores == ref.stores
            assert fast.bytes_loaded == ref.bytes_loaded
            assert fast.bytes_stored == ref.bytes_stored

    def test_unmapped_load(self):
        def build(asm):
            asm.movi(Reg.R7, RAM)
            asm.ldr(Reg.R0, Reg.R7, 0)        # counted on both engines
            asm.movi(Reg.R1, 0x1000_0000)
            asm.ldr(Reg.R2, Reg.R1, 4)        # unmapped
        self._raises_identically(build, MemoryMapError)

    def test_unmapped_store(self):
        def build(asm):
            asm.movi(Reg.R7, RAM)
            asm.str_(Reg.R0, Reg.R7, 0)
            asm.movi(Reg.R1, 0x1000_0000)
            asm.str_(Reg.R2, Reg.R1, 0)
        self._raises_identically(build, MemoryMapError)

    def test_store_to_flash_is_read_only(self):
        def build(asm):
            asm.movi(Reg.R1, FLASH)
            asm.str_(Reg.R0, Reg.R1, 8)
        self._raises_identically(build, MemoryMapError)

    def test_access_straddling_region_end(self):
        # A word load whose last byte falls past the region boundary must
        # be unmapped on both engines (MemoryMap requires full containment).
        ram_end = MemoryMap.stm32().region("ram").end

        def build(asm):
            asm.movi(Reg.R1, ram_end - 2)
            asm.ldr(Reg.R0, Reg.R1, 0)
        self._raises_identically(build, MemoryMapError)

    def test_instruction_limit_message_matches(self):
        asm = Assembler("spin")
        asm.movi(Reg.R0, 1 << 20)
        asm.label("top")
        asm.subsi(Reg.R0, Reg.R0, 1)
        asm.bgt("top")
        asm.halt()
        program = asm.assemble()
        messages = {}
        for engine in ENGINES:
            cpu = make_cpu(
                MemoryMap.stm32(), engine=engine, max_instructions=1_000
            )
            with pytest.raises(ExecutionError) as info:
                cpu.run(program)
            messages[engine] = str(info.value)
        assert messages["fastpath"] == messages["interpreter"]
        assert "exceeded 1000 instructions" in messages["fastpath"]

    def test_limit_boundary_completes_on_both(self):
        # Exactly max_instructions executed -> both engines complete.
        asm = Assembler("exact")
        asm.movi(Reg.R0, 3)
        asm.label("top")
        asm.subsi(Reg.R0, Reg.R0, 1)
        asm.bgt("top")
        asm.halt()
        program = asm.assemble()      # executes 1 + 3*2 + 1 = 8
        for engine in ENGINES:
            result = make_cpu(
                MemoryMap.stm32(), engine=engine, max_instructions=8
            ).run(program)
            assert result.instructions == 8
        for engine in ENGINES:
            with pytest.raises(ExecutionError):
                make_cpu(
                    MemoryMap.stm32(), engine=engine, max_instructions=7
                ).run(program)


class TestEngineSelection:
    def test_make_cpu_engines(self):
        memory = MemoryMap.stm32()
        assert isinstance(make_cpu(memory, engine="fastpath"), FastCPU)
        assert type(make_cpu(memory, engine="interpreter")) is CPU

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            make_cpu(MemoryMap.stm32(), engine="jit")

    def test_board_make_cpu_uses_board_costs(self):
        memory = STM32F072RB.make_memory()
        cpu = STM32F072RB.make_cpu(memory)
        assert isinstance(cpu, FastCPU)
        assert cpu.costs == STM32F072RB.costs
        interp = STM32F072RB.make_cpu(memory, engine="interpreter")
        assert type(interp) is CPU


class TestFallback:
    def test_oversized_program_falls_back_to_interpreter(self):
        asm = Assembler("huge")
        for _ in range(60_001):
            asm.movi(Reg.R0, 1)
        asm.halt()
        program = asm.assemble()
        memory = MemoryMap.stm32()
        cpu = FastCPU(memory)
        result = cpu.run(program)
        assert cpu.last_engine == "interpreter"
        assert cpu.last_translation is None
        assert result.instructions == 60_002
        reason = why_declined(program, memory)
        assert reason is not None and "translation cap" in reason

    def test_structurally_invalid_program_declined(self):
        # Ends in a non-branch: the CFG validator rejects it, the
        # translator declines, and the interpreter fallback raises the
        # interpreter's own pc-out-of-range error.
        program = Program(
            (Instr(Op.MOVI, (Reg.R0, 1)), Instr(Op.ADDI, (Reg.R1, Reg.R0, 2))),
            {}, "falls-off",
        )
        memory = MemoryMap.stm32()
        assert translate(program, memory) is None
        assert "cfg:" in why_declined(program, memory)
        cpu = FastCPU(memory)
        with pytest.raises(ExecutionError, match="out of range"):
            cpu.run(program)
        assert cpu.last_engine == "interpreter"


class TestTranslationCache:
    def test_identical_programs_share_one_translation(self):
        clear_translation_cache()
        asm = Assembler("cached")
        asm.movi(Reg.R0, 7)
        asm.halt()
        program = asm.assemble()
        memory = MemoryMap.stm32()
        first = translate(program, memory)
        # A *distinct but byte-identical* program object hits the cache.
        asm2 = Assembler("cached")
        asm2.movi(Reg.R0, 7)
        asm2.halt()
        second = translate(asm2.assemble(), memory)
        assert first is second
        stats = translation_cache_stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_cost_table_is_part_of_the_key(self):
        asm = Assembler("keyed")
        asm.movi(Reg.R0, 1)
        asm.halt()
        program = asm.assemble()
        memory = MemoryMap.stm32()
        default = translate(program, memory)
        wait_states = translate(program, memory, CycleCosts(fetch_extra=1))
        assert default is not wait_states
        assert default.block_cost_not != wait_states.block_cost_not

    def test_cost_tables_distinct_entries_in_both_tiers(self):
        """ISSUE-9 satellite: one program under two cost tables must
        yield distinct v1 AND v2 cache entries, each with that board's
        exact cycle total — a heterogeneous fleet's shared cache can
        never cross-serve a stale entry between board classes."""
        clear_translation_cache()
        asm = Assembler("per-board")
        asm.movi(Reg.R0, 5)
        asm.movi(Reg.R1, 7)
        asm.mul(Reg.R2, Reg.R0, Reg.R1)
        asm.addi(Reg.R2, Reg.R2, 1)
        asm.halt()
        program = asm.assemble()
        m0_costs = STM32F072RB.costs
        riscv_costs = BOARD_PROFILES["FE310-G002"].costs

        memory = MemoryMap.stm32()
        v1_m0 = translate(program, memory, m0_costs)
        v1_rv = translate(program, memory, riscv_costs)
        assert v1_m0 is not None and v1_rv is not None
        assert v1_m0 is not v1_rv
        v2_m0 = translate_v2(program, memory, m0_costs)
        v2_rv = translate_v2(program, memory, riscv_costs)
        assert v2_m0 is not None and v2_rv is not None
        assert v2_m0 is not v2_rv

        stats = translation_cache_stats()
        assert stats["v1"]["entries"] == 2
        assert stats["v2"]["entries"] == 2

        # Each entry carries its own board's exact total: the slow
        # RISC-V multiplier and flash wait states price the same five
        # instructions higher, and both tiers agree with the
        # interpreter under each table.
        assert v2_m0.cycles != v2_rv.cycles
        for costs, sp in ((m0_costs, v2_m0), (riscv_costs, v2_rv)):
            ref = make_cpu(
                MemoryMap.stm32(), costs=costs, engine="interpreter"
            ).run(program)
            assert sp.cycles == ref.cycles
            run_both(program, costs=costs)

    def test_offset_is_reg_distinguishes_programs(self):
        # Same operand tuple shapes, different addressing mode: the cache
        # key and the generated code must both honour offset_is_reg.
        imm = Program(
            (
                Instr(Op.MOVI, (Reg.R1, RAM)),
                Instr(Op.MOVI, (Reg.R2, 4)),
                Instr(Op.LDRB, (Reg.R0, Reg.R1, 2)),
                Instr(Op.HALT, ()),
            ),
            {}, "addr",
        )
        reg = Program(
            (
                Instr(Op.MOVI, (Reg.R1, RAM)),
                Instr(Op.MOVI, (Reg.R2, 4)),
                Instr(Op.LDRB, (Reg.R0, Reg.R1, Reg.R2), offset_is_reg=True),
                Instr(Op.HALT, ()),
            ),
            {}, "addr",
        )
        ram_image = bytes([10, 11, 12, 13, 14, 15])
        ref_imm = run_both(imm, ram_image=ram_image)
        ref_reg = run_both(reg, ram_image=ram_image)
        assert ref_imm.registers[0] == 12   # offset 2
        assert ref_reg.registers[0] == 14   # offset R2 = 4


class TestRegisterCopySemantics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_result_registers_are_not_aliased(self, engine):
        asm = Assembler("copy")
        asm.movi(Reg.R0, 123)
        asm.halt()
        program = asm.assemble()
        cpu = make_cpu(MemoryMap.stm32(), engine=engine)
        first = cpu.run(program)
        first.registers[0] = 999_999
        second = cpu.run(program)
        assert second.registers[0] == 123
        assert first.registers is not second.registers

    @pytest.mark.parametrize("engine", ENGINES)
    def test_numpy_register_inputs_are_coerced(self, engine):
        asm = Assembler("np-in")
        asm.addi(Reg.R0, Reg.R1, 1)
        asm.halt()
        program = asm.assemble()
        cpu = make_cpu(MemoryMap.stm32(), engine=engine)
        result = cpu.run(program, {Reg.R1: np.int32(-5)})
        assert result.reg(Reg.R0) == -4
        assert type(result.registers[0]) is int


class TestBlockAttribution:
    def _loop_program(self):
        asm = Assembler("attr")
        asm.movi(Reg.R0, 0)
        asm.movi(Reg.R1, 6)
        asm.label("top")
        asm.addi(Reg.R0, Reg.R0, 2)
        asm.subsi(Reg.R1, Reg.R1, 1)
        asm.bgt("top")
        asm.halt()
        return asm.assemble()

    def test_block_cycles_sum_to_total(self):
        program = self._loop_program()
        profiler = Profiler(STM32F072RB, STM32F072RB.make_memory())
        result, blocks = profiler.profile_blocks(program)
        assert sum(b.cycles for b in blocks) == result.cycles
        assert sum(b.executions * (b.end - b.start + 1) for b in blocks) \
            == result.instructions
        by_id = {b.block_id: b for b in blocks}
        assert by_id[0].executions == 1     # entry
        assert by_id[1].executions == 6     # loop body
        assert by_id[1].taken == 5          # back edge taken 5 of 6 times
        assert by_id[2].executions == 1     # halt block

    def test_attribution_requires_fastpath_engine(self):
        profiler = Profiler(
            STM32F072RB, STM32F072RB.make_memory(), engine="interpreter"
        )
        with pytest.raises(ConfigurationError, match="fastpath"):
            profiler.profile_blocks(self._loop_program())

    def test_profiler_engines_agree_on_latency(self):
        program = self._loop_program()
        reports = {}
        for engine in ENGINES:
            profiler = Profiler(
                STM32F072RB, STM32F072RB.make_memory(), engine=engine
            )
            reports[engine] = profiler.measure(program, runs=3)
        assert reports["fastpath"] == reports["interpreter"]
        assert reports["fastpath"].deterministic
