"""Differential harness for the tier-2 specialized engine.

The fastpath-v2 contract extends tier 1's bit-exactness to the
content-specialized engine: on every program the specializer accepts,
single-input runs and batch-fused runs must leave *exactly* the state
the reference interpreter would — registers, memory bytes, cycles,
instruction counts, op counts, and per-region traffic counters.  This
file enforces it on every kernel encoding (dense, unrolled dense, all
four sparse formats) and re-runs the 220-seed random-program fuzzer
from ``test_fastpath`` with tier-2 preconditions (zero entry
registers), covering both the accept path (single + fused) and the
decline machinery.  It also pins the tiered cache-stats contract and
dual-tier eviction.
"""

import numpy as np
import pytest

from repro.core.adjacency import clustered_adjacency
from repro.errors import ExecutionError
from repro.kernels.codegen_dense import generate_dense
from repro.kernels.codegen_sparse import SPARSE_FORMATS, generate_sparse
from repro.kernels.codegen_unrolled import generate_dense_unrolled
from repro.kernels.spec import make_dense_spec, make_neuroc_spec
from repro.mcu.board import STM32F072RB
from repro.mcu.fastpath import (
    FastCPU,
    clear_translation_cache,
    evict_translation,
    make_cpu,
    translate,
    translate_v2,
    translation_cache_stats,
    why_declined_v2,
)
from repro.mcu.fastpath_v2 import (
    SpecializedProgram,
    charge_batch_traffic,
    commit_batch_row,
    make_batch_state,
)
from repro.mcu.isa import Assembler, Instr, Op, Program, Reg
from repro.mcu.memory import MemoryMap
from tests.mcu.test_fastpath import (
    RAM,
    SCRATCH,
    _random_program,
    _random_state,
)

COSTS = STM32F072RB.costs

_DTYPES = {1: np.int8, 2: np.int16, 4: np.int32}


# -- kernel-image helpers --------------------------------------------------


def _sparse_spec(n_in=96, n_out=16, density=0.15, seed=0):
    rng = np.random.default_rng(seed)
    adjacency = clustered_adjacency(n_in, n_out, density, rng)
    return make_neuroc_spec(
        adjacency=adjacency,
        bias=rng.integers(-100, 100, n_out).astype(np.int32),
        mult=rng.integers(50, 200, n_out).astype(np.int16),
        shift=10, act_in_width=2, act_out_width=2, relu=True,
    )


def _dense_spec(n_in=96, n_out=16, seed=0):
    rng = np.random.default_rng(seed)
    return make_dense_spec(
        weights=rng.integers(-8, 9, (n_in, n_out)).astype(np.int8),
        bias=rng.integers(-100, 100, n_out).astype(np.int32),
        mult=rng.integers(50, 200, n_out).astype(np.int16),
        shift=10, act_in_width=2, act_out_width=2, relu=True,
    )


_BUILDERS = {
    "dense": lambda: generate_dense(_dense_spec()),
    "dense-unroll4": lambda: generate_dense_unrolled(
        _dense_spec(), unroll=4
    ),
    **{
        f"sparse-{fmt}": (
            lambda fmt=fmt: generate_sparse(_sparse_spec(), fmt)
        )
        for fmt in SPARSE_FORMATS
    },
}

ENCODINGS = tuple(_BUILDERS)


def _locate_writable(memory, addr, span):
    """(mats position, byte offset) of ``[addr, addr+span)``."""
    position = 0
    for region in memory.regions:
        if not region.writable:
            continue
        if region.contains(addr, span):
            return position, addr - region.base
        position += 1
    raise AssertionError(f"0x{addr:08x} not in a writable region")


def _region_state(memory):
    return [
        (
            bytes(region.data),
            region.loads,
            region.stores,
            region.bytes_loaded,
            region.bytes_stored,
        )
        for region in memory.regions
    ]


def _assert_results_equal(got, ref, context=""):
    assert got.cycles == ref.cycles, context
    assert got.instructions == ref.instructions, context
    assert got.registers == ref.registers, context
    assert got.op_counts == ref.op_counts, context


def _row_registers(out_regs, row):
    """One batch row's final register file from ``sp.fn``'s output."""
    return [
        value if isinstance(value, int)
        else int(np.asarray(value).ravel()[row])
        for value in out_regs
    ]


# -- kernel differentials --------------------------------------------------


class TestKernelDifferentialV2:
    """Every encoding, specialized engine vs interpreter, bit-exact."""

    @pytest.mark.parametrize("name", ENCODINGS)
    def test_single_input_bit_exact(self, name):
        ref_image = _BUILDERS[name]()
        v2_image = _BUILDERS[name]()
        rng = np.random.default_rng(7)
        x = rng.integers(-2, 2, ref_image.input_count)
        ref_image.write_input(x)
        v2_image.write_input(x)

        ref = make_cpu(
            ref_image.memory, costs=COSTS, engine="interpreter"
        ).run(ref_image.program)
        cpu = make_cpu(v2_image.memory, costs=COSTS, engine="fastpath-v2")
        got = cpu.run(v2_image.program)

        assert cpu.last_engine == "fastpath-v2", (
            f"specializer declined {name}: "
            f"{why_declined_v2(v2_image.program, v2_image.memory, COSTS)}"
        )
        _assert_results_equal(got, ref, name)
        assert _region_state(v2_image.memory) == _region_state(
            ref_image.memory
        ), name
        assert np.array_equal(
            v2_image.read_output(), ref_image.read_output()
        ), name

    @pytest.mark.parametrize("name", ENCODINGS)
    def test_batch_fused_matches_sequential_interpreter(self, name):
        batch = 5
        ref_image = _BUILDERS[name]()
        fused_image = _BUILDERS[name]()
        rng = np.random.default_rng(11)
        xs = rng.integers(-2, 2, (batch, ref_image.input_count))

        interp = make_cpu(
            ref_image.memory, costs=COSTS, engine="interpreter"
        )
        refs, ref_outputs = [], []
        for row in range(batch):
            ref_image.write_input(xs[row])
            refs.append(interp.run(ref_image.program))
            ref_outputs.append(ref_image.read_output().copy())

        sp = translate_v2(fused_image.program, fused_image.memory, COSTS)
        assert sp is not None, (
            f"specializer declined {name}: "
            f"{why_declined_v2(fused_image.program, fused_image.memory, COSTS)}"
        )
        memory = fused_image.memory
        mats = make_batch_state(memory, batch)
        in_dtype = np.dtype(
            _DTYPES[fused_image.input_width]
        ).newbyteorder("<")
        raw = np.ascontiguousarray(
            xs.astype(in_dtype)
        ).view(np.uint8).reshape(batch, -1)
        pos, off = _locate_writable(
            memory, fused_image.input_addr, raw.shape[1]
        )
        mats[pos][:, off:off + raw.shape[1]] = raw

        out_regs = sp.fn(mats)
        charge_batch_traffic(memory, sp, batch)
        commit_batch_row(memory, mats, batch - 1)

        # Per-request charges are input-independent constants.
        for row, ref in enumerate(refs):
            assert sp.cycles == ref.cycles, (name, row)
            assert sp.instructions == ref.instructions, (name, row)
            assert sp.op_counts() == ref.op_counts, (name, row)
            assert _row_registers(out_regs, row) == ref.registers, (
                name, row,
            )

        # Per-row outputs match the sequential interpreter runs.
        out_dtype = np.dtype(
            _DTYPES[fused_image.output_width]
        ).newbyteorder("<")
        ospan = fused_image.output_count * fused_image.output_width
        opos, ooff = _locate_writable(
            memory, fused_image.output_addr, ospan
        )
        logits = np.ascontiguousarray(
            mats[opos][:, ooff:ooff + ospan]
        ).view(out_dtype)
        assert np.array_equal(logits, np.stack(ref_outputs)), name

        # Final memory + traffic equal `batch` sequential runs.
        assert _region_state(memory) == _region_state(
            ref_image.memory
        ), name


# -- the fuzzer, tier-2 edition --------------------------------------------


def _interp_run(program, ram_image, costs):
    memory = MemoryMap.stm32()
    memory.region("ram").data[: len(ram_image)] = ram_image
    result = make_cpu(memory, costs=costs, engine="interpreter").run(
        program
    )
    return result, memory


class TestFuzzDifferentialV2:
    """The 220 fuzz seeds under tier-2 preconditions (zero registers).

    201 of the 220 generated programs specialize (input-independent
    control flow and addressing); the other 19 exercise the decline
    machinery and must still be served bit-exactly by a lower tier.
    Accepted programs are additionally run batch-fused over rows with
    *different* RAM images and compared row-by-row.
    """

    @pytest.mark.parametrize("seed", range(220))
    def test_zero_entry_bit_exact(self, seed):
        program = _random_program(seed)
        _, ram_image, costs = _random_state(seed)
        ref, ref_memory = _interp_run(program, ram_image, costs)

        memory = MemoryMap.stm32()
        memory.region("ram").data[: len(ram_image)] = ram_image
        cpu = make_cpu(memory, costs=costs, engine="fastpath-v2")
        got = cpu.run(program)

        _assert_results_equal(got, ref, f"seed {seed}")
        assert _region_state(memory) == _region_state(ref_memory), seed
        if cpu.last_specialization is not None:
            assert cpu.last_engine == "fastpath-v2"
            self._check_batch_fused(
                program, cpu.last_specialization, seed, costs
            )
        else:
            assert cpu.last_engine in ("fastpath", "interpreter")

    def _check_batch_fused(self, program, sp, seed, costs):
        batch = 3
        rng = np.random.default_rng(seed + 77_000)
        images = [
            bytes(rng.integers(0, 256, SCRATCH, dtype=np.uint8))
            for _ in range(batch)
        ]
        refs = [_interp_run(program, image, costs) for image in images]

        memory = MemoryMap.stm32()
        mats = make_batch_state(memory, batch)
        pos, off = _locate_writable(memory, RAM, SCRATCH)
        for row, image in enumerate(images):
            mats[pos][row, off:off + SCRATCH] = np.frombuffer(
                image, dtype=np.uint8
            )
        out_regs = sp.fn(mats)
        for row, (ref, ref_memory) in enumerate(refs):
            assert sp.cycles == ref.cycles, (seed, row)
            assert sp.instructions == ref.instructions, (seed, row)
            assert _row_registers(out_regs, row) == ref.registers, (
                seed, row,
            )
            assert (
                mats[pos][row].tobytes()
                == bytes(ref_memory.region("ram").data)
            ), (seed, row)

    def test_fuzzer_exercises_both_tier2_paths(self):
        accepted = declined = 0
        for seed in range(220):
            program = _random_program(seed)
            _, ram_image, costs = _random_state(seed)
            memory = MemoryMap.stm32()
            memory.region("ram").data[: len(ram_image)] = ram_image
            if translate_v2(program, memory, costs) is None:
                declined += 1
            else:
                accepted += 1
        assert accepted >= 150, accepted
        assert declined >= 10, declined


# -- tier selection and decline rules --------------------------------------


def _trivial_program(name="tiny"):
    asm = Assembler(name)
    asm.movi(Reg.R0, 41)
    asm.addi(Reg.R0, Reg.R0, 1)
    asm.halt()
    return asm.assemble()


class TestTierSelection:
    def test_nonzero_entry_registers_stay_on_tier1(self):
        program = _trivial_program()
        memory = MemoryMap.stm32()
        cpu = make_cpu(memory, engine="fastpath-v2")
        assert isinstance(cpu, FastCPU) and cpu.prefer_v2
        result = cpu.run(program, {Reg.R5: 9})
        assert cpu.last_engine == "fastpath"
        assert cpu.last_specialization is None
        assert result.registers[Reg.R0] == 42

        # All-zero explicit registers satisfy the precondition.
        cpu.run(program, {Reg.R5: 0})
        assert cpu.last_engine == "fastpath-v2"
        assert cpu.last_specialization is not None

    def test_data_dependent_branch_declines_to_tier1(self):
        asm = Assembler("sym-branch")
        asm.movi(Reg.R7, RAM)
        asm.ldrb(Reg.R0, Reg.R7, 0)
        asm.cmpi(Reg.R0, 3)
        asm.beq("skip")
        asm.addi(Reg.R1, Reg.R1, 1)
        asm.label("skip")
        asm.halt()
        program = asm.assemble()
        memory = MemoryMap.stm32()
        reason = why_declined_v2(program, memory)
        assert reason is not None and "symbolic flags" in reason
        cpu = make_cpu(memory, engine="fastpath-v2")
        ref, ref_memory = _interp_run(program, b"", None)
        got = cpu.run(program)
        assert cpu.last_engine == "fastpath"
        _assert_results_equal(got, ref)

    def test_data_dependent_address_declines_to_tier1(self):
        asm = Assembler("sym-addr")
        asm.movi(Reg.R7, RAM)
        asm.ldrb(Reg.R1, Reg.R7, 0)
        asm.ldrb(Reg.R0, Reg.R7, Reg.R1)
        asm.halt()
        program = asm.assemble()
        memory = MemoryMap.stm32()
        reason = why_declined_v2(program, memory)
        assert reason is not None and "depends on input data" in reason
        cpu = make_cpu(memory, engine="fastpath-v2")
        cpu.run(program)
        assert cpu.last_engine == "fastpath"

    def test_tier1_decline_propagates(self):
        # Structurally invalid: ends in a non-branch, tier 1 declines,
        # so tier 2 records the tier-1 reason and the interpreter
        # fallback serves the (failing) run.
        program = Program(
            (
                Instr(Op.MOVI, (Reg.R0, 1)),
                Instr(Op.ADDI, (Reg.R1, Reg.R0, 2)),
            ),
            {}, "falls-off-v2",
        )
        memory = MemoryMap.stm32()
        assert translate_v2(program, memory) is None
        reason = why_declined_v2(program, memory)
        assert reason is not None and reason.startswith("tier 1 declined")
        cpu = make_cpu(memory, engine="fastpath-v2")
        with pytest.raises(ExecutionError, match="out of range"):
            cpu.run(program)
        assert cpu.last_engine == "interpreter"

    def test_instruction_cap_respected(self):
        # The fused body cannot stop mid-flight, so tier 2 only serves
        # runs that provably fit under max_instructions; over the cap
        # the chain falls to tier 1, which raises like the interpreter.
        program = _trivial_program("capped")     # executes 3
        memory = MemoryMap.stm32()
        cpu = FastCPU(memory, prefer_v2=True, max_instructions=3)
        result = cpu.run(program)
        assert cpu.last_engine == "fastpath-v2"
        assert result.instructions == 3
        tight = FastCPU(memory, prefer_v2=True, max_instructions=2)
        with pytest.raises(ExecutionError, match="exceeded 2 instructions"):
            tight.run(program)
        assert tight.last_engine != "fastpath-v2"

    def test_specialization_is_shared_across_replicas(self):
        # Two byte-identical programs against identical frozen content
        # share one SpecializedProgram (the fleet-replica contract).
        clear_translation_cache()
        memory_a, memory_b = MemoryMap.stm32(), MemoryMap.stm32()
        first = translate_v2(_trivial_program("twin"), memory_a)
        second = translate_v2(_trivial_program("twin"), memory_b)
        assert isinstance(first, SpecializedProgram)
        assert first is second

    def test_flash_content_is_part_of_the_key(self):
        # Same program, different read-only bytes: distinct
        # specializations (the content hash extends the cache key).
        clear_translation_cache()
        asm = Assembler("flashy")
        asm.movi(Reg.R7, 0x0800_0000)
        asm.ldrb(Reg.R0, Reg.R7, 0)
        asm.halt()
        program = asm.assemble()
        plain = MemoryMap.stm32()
        patched = MemoryMap.stm32()
        patched.region("flash").data[0] = 0x5A
        first = translate_v2(program, plain)
        second = translate_v2(program, patched)
        assert first is not second
        assert translation_cache_stats()["v2"]["entries"] == 2


# -- tiered cache stats and eviction ---------------------------------------


class TestTieredCacheStats:
    def test_stats_report_each_tier(self):
        clear_translation_cache()
        program = _trivial_program("stats")
        memory = MemoryMap.stm32()

        translate(program, memory)
        stats = translation_cache_stats()
        assert stats["v1"] == {
            "entries": 1, "hits": 0, "misses": 1, "declined": 0,
        }
        assert stats["v2"]["entries"] == 0

        # translate_v2 records a v2 miss and *hits* the v1 entry it
        # builds on.
        translate_v2(program, memory)
        stats = translation_cache_stats()
        assert stats["v1"]["hits"] == 1
        assert stats["v2"] == {
            "entries": 1, "hits": 0, "misses": 1, "declined": 0,
        }

        translate_v2(program, memory)
        stats = translation_cache_stats()
        assert stats["v2"]["hits"] == 1
        # Aggregate keys stay the cross-tier sums.
        assert stats["entries"] == 2
        assert stats["hits"] == stats["v1"]["hits"] + stats["v2"]["hits"]
        assert (
            stats["misses"]
            == stats["v1"]["misses"] + stats["v2"]["misses"]
        )

    def test_declines_counted_per_tier(self):
        clear_translation_cache()
        asm = Assembler("declines")
        asm.movi(Reg.R7, RAM)
        asm.ldrb(Reg.R0, Reg.R7, 0)
        asm.cmpi(Reg.R0, 0)
        asm.beq("out")
        asm.label("out")
        asm.halt()
        program = asm.assemble()
        memory = MemoryMap.stm32()
        assert translate_v2(program, memory) is None
        stats = translation_cache_stats()
        assert stats["v1"]["declined"] == 0      # tier 1 accepts it
        assert stats["v2"]["declined"] == 1
        assert stats["declined"] == 1

    def test_evict_drops_both_tiers(self):
        clear_translation_cache()
        program = _trivial_program("evicted")
        memory = MemoryMap.stm32()
        translate(program, memory)
        translate_v2(program, memory)
        assert translation_cache_stats()["entries"] == 2

        assert evict_translation(program, memory) is True
        stats = translation_cache_stats()
        assert stats["entries"] == 0
        assert stats["v1"]["entries"] == 0
        assert stats["v2"]["entries"] == 0

        # Rebuilding after eviction misses both tiers again.
        translate_v2(program, memory)
        stats = translation_cache_stats()
        assert stats["v1"]["misses"] == 2
        assert stats["v2"]["misses"] == 2

    def test_evict_with_only_v1_present(self):
        clear_translation_cache()
        program = _trivial_program("v1-only")
        memory = MemoryMap.stm32()
        translate(program, memory)
        assert evict_translation(program, memory) is True
        assert translation_cache_stats()["entries"] == 0
        assert evict_translation(program, memory) is False
