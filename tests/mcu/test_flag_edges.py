"""Flag semantics at the 32-bit boundaries, on both execution engines.

The signed-overflow (V) flag is the easiest thing to get wrong in a
translator: Python integers never wrap, so V must be derived from the
*unwrapped* difference.  These tests pin the CMP/CMPI/SUBSI flag
behaviour at INT_MIN/INT_MAX, where naive "lhs < rhs" comparisons give
the wrong branch direction, and assert the two engines agree on every
case.
"""

import pytest

from repro.mcu.fastpath import ENGINES, make_cpu
from repro.mcu.isa import Assembler, Reg
from repro.mcu.memory import MemoryMap

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1


def _branch_select(compare, branch):
    """R12 = 1 if the branch is taken after ``compare``, else 0."""
    asm = Assembler("flag-edge")
    compare(asm)
    getattr(asm, branch)("taken")
    asm.movi(Reg.R12, 0)
    asm.halt()
    asm.label("taken")
    asm.movi(Reg.R12, 1)
    asm.halt()
    return asm.assemble()


def _run(program, registers, engine):
    cpu = make_cpu(MemoryMap.stm32(), engine=engine)
    return cpu.run(program, registers)


@pytest.mark.parametrize("engine", ENGINES)
class TestSignedOverflowBoundaries:
    """Cases where the V flag flips the branch against naive intuition."""

    def check(self, engine, compare, registers, expectations):
        for branch, expect_taken in expectations.items():
            program = _branch_select(compare, branch)
            result = _run(program, dict(registers), engine)
            assert result.reg(Reg.R12) == int(expect_taken), (
                f"{branch} with {registers}: "
                f"expected taken={expect_taken} on {engine}"
            )

    def test_int_min_minus_one_overflows(self, engine):
        # INT_MIN - 1 wraps to INT_MAX: N=0 but V=1, so INT_MIN < 1
        # still holds (BLT taken) even though the wrapped diff is huge
        # and positive.
        self.check(
            engine,
            lambda asm: asm.cmpi(Reg.R0, 1),
            {Reg.R0: INT_MIN},
            {"blt": True, "bge": False, "bgt": False, "ble": True,
             "beq": False, "bne": True},
        )

    def test_int_max_minus_negative_overflows(self, engine):
        # INT_MAX - (-1) = 2^31: N=1 but V=1, so INT_MAX > -1 (BGT
        # taken) even though the wrapped diff looks negative.
        self.check(
            engine,
            lambda asm: asm.cmpi(Reg.R0, -1),
            {Reg.R0: INT_MAX},
            {"bgt": True, "bge": True, "blt": False, "ble": False,
             "beq": False, "bne": True},
        )

    def test_cmp_register_form_at_the_same_boundary(self, engine):
        self.check(
            engine,
            lambda asm: asm.cmp(Reg.R0, Reg.R1),
            {Reg.R0: INT_MIN, Reg.R1: 1},
            {"blt": True, "bge": False},
        )
        self.check(
            engine,
            lambda asm: asm.cmp(Reg.R0, Reg.R1),
            {Reg.R0: INT_MAX, Reg.R1: -1},
            {"bgt": True, "ble": False},
        )

    def test_cmpi_against_negative_immediate(self, engine):
        # The immediate is compared *unmasked*: -5 means -5, not
        # 0xFFFFFFFB.  R0 = -3 (masked in the register file) is greater.
        self.check(
            engine,
            lambda asm: asm.cmpi(Reg.R0, -5),
            {Reg.R0: -3},
            {"bgt": True, "blt": False, "beq": False},
        )
        self.check(
            engine,
            lambda asm: asm.cmpi(Reg.R0, -5),
            {Reg.R0: -5},
            {"beq": True, "bne": False, "bge": True, "ble": True},
        )

    def test_equal_at_int_min(self, engine):
        self.check(
            engine,
            lambda asm: asm.cmpi(Reg.R0, INT_MIN),
            {Reg.R0: INT_MIN},
            {"beq": True, "blt": False, "bgt": False, "bge": True,
             "ble": True},
        )


@pytest.mark.parametrize("engine", ENGINES)
class TestSubsiWraparound:
    def test_subsi_at_int_min_wraps_and_sets_v(self, engine):
        # R1 = INT_MIN - 1 wraps to INT_MAX; the flags must still say
        # "went below INT_MIN" (BLT taken), and the stored value is the
        # wrapped bit pattern.
        asm = Assembler("wrap")
        asm.subsi(Reg.R1, Reg.R0, 1)
        asm.blt("under")
        asm.movi(Reg.R12, 0)
        asm.halt()
        asm.label("under")
        asm.movi(Reg.R12, 1)
        asm.halt()
        result = _run(asm.assemble(), {Reg.R0: INT_MIN}, engine)
        assert result.reg(Reg.R12) == 1
        assert result.registers[1] == INT_MAX

    def test_subsi_zero_result_sets_z_not_v(self, engine):
        asm = Assembler("zero")
        asm.subsi(Reg.R1, Reg.R0, INT_MIN)
        asm.beq("eq")
        asm.movi(Reg.R12, 0)
        asm.halt()
        asm.label("eq")
        asm.movi(Reg.R12, 1)
        asm.halt()
        result = _run(asm.assemble(), {Reg.R0: INT_MIN}, engine)
        assert result.reg(Reg.R12) == 1
        assert result.registers[1] == 0


def test_engines_agree_on_a_dense_boundary_sweep():
    """Every (lhs, rhs, branch) combination over the boundary set."""
    values = (INT_MIN, INT_MIN + 1, -2, -1, 0, 1, 2, INT_MAX - 1, INT_MAX)
    branches = ("beq", "bne", "blt", "bge", "bgt", "ble")
    programs = {
        branch: _branch_select(
            lambda asm: asm.cmp(Reg.R0, Reg.R1), branch
        )
        for branch in branches
    }
    for lhs in values:
        for rhs in values:
            for branch, program in programs.items():
                registers = {Reg.R0: lhs, Reg.R1: rhs}
                outcomes = {
                    engine: _run(program, dict(registers), engine).reg(Reg.R12)
                    for engine in ENGINES
                }
                assert outcomes["fastpath"] == outcomes["interpreter"], (
                    f"{branch}: lhs={lhs} rhs={rhs} diverged: {outcomes}"
                )
                # Ground truth: the branch direction must match plain
                # signed comparison of the unwrapped values.
                expected = {
                    "beq": lhs == rhs, "bne": lhs != rhs,
                    "blt": lhs < rhs, "bge": lhs >= rhs,
                    "bgt": lhs > rhs, "ble": lhs <= rhs,
                }[branch]
                assert outcomes["fastpath"] == int(expected)
