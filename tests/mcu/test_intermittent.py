"""Intermittent execution: correctness under any power schedule."""

import numpy as np
import pytest

from repro.deploy.artifact import DeployedModel
from repro.errors import ConfigurationError, ExecutionError
from repro.mcu.intermittent import (
    IntermittentDeployment,
    PowerBudget,
)


@pytest.fixture(scope="module")
def deployment(trained_neuroc):
    deployed = DeployedModel(trained_neuroc.quantized, "block")
    return IntermittentDeployment(deployed)


class TestIntermittentExecution:
    def test_generous_budget_completes_in_one_power_cycle(
        self, deployment, digits_small
    ):
        budget = PowerBudget(cycles_per_charge=10_000_000)
        run = deployment.run(digits_small.x_test[0], budget)
        assert run.completed
        assert run.power_cycles_used == 1
        assert run.wasted_cycles == 0

    def test_tight_budget_needs_multiple_charges(
        self, deployment, digits_small
    ):
        minimum = deployment.minimum_charge_cycles()
        run = deployment.run(
            digits_small.x_test[0], PowerBudget(minimum)
        )
        assert run.completed
        assert run.power_cycles_used >= 2

    def test_results_identical_across_power_schedules(
        self, deployment, digits_small
    ):
        x = digits_small.x_test[3]
        generous = deployment.run(x, PowerBudget(10_000_000))
        tight = deployment.run(
            x, PowerBudget(deployment.minimum_charge_cycles())
        )
        assert np.array_equal(generous.logits, tight.logits)
        assert generous.label == tight.label

    def test_overhead_accounting(self, deployment, digits_small):
        run = deployment.run(
            digits_small.x_test[0],
            PowerBudget(deployment.minimum_charge_cycles() * 2),
        )
        assert run.total_cycles == (
            run.compute_cycles + run.checkpoint_cycles + run.wasted_cycles
        )
        assert run.checkpoint_cycles > 0

    def test_starvation_detected(self, deployment, digits_small):
        too_small = deployment.minimum_charge_cycles() - 1
        with pytest.raises(ExecutionError, match="forward progress"):
            deployment.run(digits_small.x_test[0], PowerBudget(too_small))

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(0)
