"""Intermittent execution: correctness under any power schedule."""

import numpy as np
import pytest

from repro.deploy.artifact import DeployedModel
from repro.errors import ConfigurationError, ExecutionError
from repro.mcu.intermittent import (
    IntermittentDeployment,
    PowerBudget,
)


@pytest.fixture(scope="module")
def deployment(trained_neuroc):
    deployed = DeployedModel(trained_neuroc.quantized, "block")
    return IntermittentDeployment(deployed)


class TestIntermittentExecution:
    def test_generous_budget_completes_in_one_power_cycle(
        self, deployment, digits_small
    ):
        budget = PowerBudget(cycles_per_charge=10_000_000)
        run = deployment.run(digits_small.x_test[0], budget)
        assert run.completed
        assert run.power_cycles_used == 1
        assert run.wasted_cycles == 0

    def test_tight_budget_needs_multiple_charges(
        self, deployment, digits_small
    ):
        minimum = deployment.minimum_charge_cycles()
        run = deployment.run(
            digits_small.x_test[0], PowerBudget(minimum)
        )
        assert run.completed
        assert run.power_cycles_used >= 2

    def test_results_identical_across_power_schedules(
        self, deployment, digits_small
    ):
        x = digits_small.x_test[3]
        generous = deployment.run(x, PowerBudget(10_000_000))
        tight = deployment.run(
            x, PowerBudget(deployment.minimum_charge_cycles())
        )
        assert np.array_equal(generous.logits, tight.logits)
        assert generous.label == tight.label

    def test_overhead_accounting(self, deployment, digits_small):
        run = deployment.run(
            digits_small.x_test[0],
            PowerBudget(deployment.minimum_charge_cycles() * 2),
        )
        assert run.total_cycles == (
            run.compute_cycles + run.checkpoint_cycles + run.wasted_cycles
        )
        assert run.checkpoint_cycles > 0

    def test_starvation_detected(self, deployment, digits_small):
        too_small = deployment.minimum_charge_cycles() - 1
        with pytest.raises(ExecutionError, match="forward progress"):
            deployment.run(digits_small.x_test[0], PowerBudget(too_small))

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(0)


class TestForwardProgressBoundary:
    """ISSUE-9 satellite: the guard threshold IS minimum_charge_cycles().

    Every post-reboot charge only supplies ``cycles_per_charge -
    RESTORE_OVERHEAD_CYCLES`` of useful work, so the admission guard must
    include the restore overhead — a guard on the bare layer+checkpoint
    unit would admit a charge that then spins against the power-cycle
    limit with a misleading error.  These tests pin the exact boundary
    on both sides so the guard and ``minimum_charge_cycles()`` can never
    drift apart again.
    """

    def test_exact_minimum_charge_completes(self, deployment, digits_small):
        minimum = deployment.minimum_charge_cycles()
        run = deployment.run(digits_small.x_test[1], PowerBudget(minimum))
        assert run.completed
        # Progress every charge: each reboot's usable window (minimum
        # minus restore) covers the worst layer+checkpoint unit, so the
        # run can never need more charges than units of work.
        assert run.power_cycles_used <= len(
            deployment.deployed.quantized.specs
        ) + 1

    def test_one_cycle_below_minimum_raises_immediately_not_a_spin(
        self, deployment, digits_small
    ):
        from repro.mcu.intermittent import RESTORE_OVERHEAD_CYCLES

        minimum = deployment.minimum_charge_cycles()
        # Anywhere in (bare unit, minimum): enough for the largest unit
        # on the *first* charge, not after a restore — the starvation
        # hazard the guard exists for.  It must be the typed
        # forward-progress error, never the power-cycle-limit error a
        # spin would eventually hit.
        for charge in (minimum - 1, minimum - RESTORE_OVERHEAD_CYCLES + 1):
            with pytest.raises(ExecutionError, match="forward progress"):
                deployment.run(
                    digits_small.x_test[1], PowerBudget(charge)
                )

    def test_guard_threshold_includes_restore_overhead(self, deployment):
        from repro.mcu.intermittent import (
            CHECKPOINT_CYCLES_PER_BYTE,
            RESTORE_OVERHEAD_CYCLES,
        )

        worst_bare = max(
            layer + checkpoint
            for layer, checkpoint in zip(
                deployment._layer_costs, deployment._checkpoint_costs
            )
        )
        assert deployment.minimum_charge_cycles() == (
            worst_bare + RESTORE_OVERHEAD_CYCLES
        )
        assert CHECKPOINT_CYCLES_PER_BYTE > 0
