"""Assembler and instruction-set invariants."""

import pytest

from repro.errors import AssemblyError
from repro.mcu.isa import (
    ACCESS_WIDTH,
    BRANCH_OPS,
    LOAD_OPS,
    SIGNED_LOADS,
    STORE_OPS,
    Assembler,
    Op,
    Reg,
)


def _trivial_program():
    asm = Assembler("trivial")
    asm.movi(Reg.R0, 7)
    asm.halt()
    return asm.assemble()


class TestAssembler:
    def test_assemble_resolves_labels_to_indices(self):
        asm = Assembler("loop")
        asm.movi(Reg.R0, 3)
        asm.label("top")
        asm.subsi(Reg.R0, Reg.R0, 1)
        asm.bgt("top")
        asm.halt()
        program = asm.assemble()
        branch = program.instructions[2]
        assert branch.op is Op.BGT
        assert branch.operands == (1,)  # index of the SUBSI

    def test_unknown_label_raises(self):
        asm = Assembler("bad")
        asm.b("nowhere")
        asm.halt()
        with pytest.raises(AssemblyError, match="nowhere"):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler("dup")
        asm.label("x")
        asm.movi(Reg.R0, 0)
        with pytest.raises(AssemblyError, match="duplicate"):
            asm.label("x")

    def test_missing_halt_raises(self):
        asm = Assembler("nohalt")
        asm.movi(Reg.R0, 1)
        with pytest.raises(AssemblyError, match="HALT"):
            asm.assemble()

    def test_empty_program_raises(self):
        with pytest.raises(AssemblyError):
            Assembler("empty").assemble()

    def test_register_offset_loads_are_flagged(self):
        asm = Assembler("regoff")
        asm.ldrb(Reg.R0, Reg.R1, Reg.R2)
        asm.ldrb(Reg.R0, Reg.R1, 4)
        asm.halt()
        program = asm.assemble()
        assert program.instructions[0].offset_is_reg
        assert not program.instructions[1].offset_is_reg

    def test_code_size_is_two_bytes_per_instruction(self):
        program = _trivial_program()
        assert program.code_size_bytes() == 2 * len(program)

    def test_listing_mentions_labels_and_ops(self):
        asm = Assembler("listed")
        asm.label("entry")
        asm.movi(Reg.R3, 1)
        asm.halt()
        listing = asm.assemble().listing()
        assert "entry:" in listing
        assert "movi" in listing


class TestOpClassification:
    def test_load_store_sets_are_disjoint(self):
        assert not (LOAD_OPS & STORE_OPS)
        assert not (LOAD_OPS & BRANCH_OPS)

    def test_every_memory_op_has_a_width(self):
        for op in LOAD_OPS | STORE_OPS:
            assert ACCESS_WIDTH[op] in (1, 2, 4)

    def test_signed_loads_are_loads(self):
        assert SIGNED_LOADS <= LOAD_OPS
