"""Hypothesis property tests: the interpreter vs. a Python oracle.

Random straight-line ALU programs are executed both by the CPU and by a
direct Python evaluation of the same operations on 32-bit semantics; the
register files must agree exactly.  This pins the interpreter's masking,
sign-extension, and shift semantics independently of the kernel tests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcu.cpu import CPU
from repro.mcu.isa import Assembler, Reg
from repro.mcu.memory import MemoryMap

_MASK = 0xFFFF_FFFF

REGS = [Reg.R0, Reg.R1, Reg.R2, Reg.R3]


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & 0x8000_0000 else value


_OPS = ("add", "sub", "mul", "and", "orr", "eor", "lsl", "lsr", "asr")


@st.composite
def alu_programs(draw):
    length = draw(st.integers(1, 25))
    init = [draw(st.integers(-(2**31), 2**31 - 1)) for _ in REGS]
    steps = []
    for _ in range(length):
        op = draw(st.sampled_from(_OPS))
        dst = draw(st.sampled_from(REGS))
        a = draw(st.sampled_from(REGS))
        if op in ("lsl", "lsr", "asr"):
            steps.append((op, dst, a, draw(st.integers(0, 31))))
        else:
            steps.append((op, dst, a, draw(st.sampled_from(REGS))))
    return init, steps


def _oracle(init, steps):
    regs = {r: init[i] & _MASK for i, r in enumerate(REGS)}
    for op, dst, a, b in steps:
        if op == "add":
            regs[dst] = (regs[a] + regs[b]) & _MASK
        elif op == "sub":
            regs[dst] = (regs[a] - regs[b]) & _MASK
        elif op == "mul":
            regs[dst] = (_signed(regs[a]) * _signed(regs[b])) & _MASK
        elif op == "and":
            regs[dst] = regs[a] & regs[b]
        elif op == "orr":
            regs[dst] = regs[a] | regs[b]
        elif op == "eor":
            regs[dst] = regs[a] ^ regs[b]
        elif op == "lsl":
            regs[dst] = (regs[a] << b) & _MASK
        elif op == "lsr":
            regs[dst] = regs[a] >> b
        elif op == "asr":
            regs[dst] = (_signed(regs[a]) >> b) & _MASK
    return regs


@settings(max_examples=150, deadline=None)
@given(program=alu_programs())
def test_interpreter_matches_python_oracle(program):
    init, steps = program
    asm = Assembler("prop")
    for i, reg in enumerate(REGS):
        asm.movi(reg, init[i])
    for op, dst, a, b in steps:
        if op == "add":
            asm.add(dst, a, b)
        elif op == "sub":
            asm.sub(dst, a, b)
        elif op == "mul":
            asm.mul(dst, a, b)
        elif op == "and":
            asm.and_(dst, a, b)
        elif op == "orr":
            asm.orr(dst, a, b)
        elif op == "eor":
            asm.eor(dst, a, b)
        elif op == "lsl":
            asm.lsli(dst, a, b)
        elif op == "lsr":
            asm.lsri(dst, a, b)
        elif op == "asr":
            asm.asri(dst, a, b)
    asm.halt()
    result = CPU(MemoryMap.stm32()).run(asm.assemble())
    expected = _oracle(init, steps)
    for reg in REGS:
        assert result.registers[reg] == expected[reg], reg

    # Cycle accounting for straight-line code: every instruction but the
    # MOVIs and HALT is 1 cycle here except MUL (also 1) — i.e. the cycle
    # count equals the instruction count for pure ALU programs.
    assert result.cycles == result.instructions


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1,
                    max_size=20),
    width=st.sampled_from([1, 2, 4]),
)
def test_memory_roundtrip_preserves_low_bytes(values, width):
    memory = MemoryMap.stm32()
    base = 0x2000_0000
    for i, value in enumerate(values):
        memory.store(base + i * width, width, value & _MASK)
    for i, value in enumerate(values):
        loaded = memory.load(base + i * width, width, signed=True)
        bits = 8 * width
        expected = value & ((1 << bits) - 1)
        if expected >= 1 << (bits - 1):
            expected -= 1 << bits
        assert loaded == expected


@settings(max_examples=60, deadline=None)
@given(
    lhs=st.integers(-(2**31), 2**31 - 1),
    rhs=st.integers(-(2**31), 2**31 - 1),
)
def test_signed_branches_agree_with_python_comparison(lhs, rhs):
    outcomes = {}
    for name, pythonic in (
        ("blt", lhs < rhs), ("bge", lhs >= rhs),
        ("bgt", lhs > rhs), ("ble", lhs <= rhs),
        ("beq", lhs == rhs), ("bne", lhs != rhs),
    ):
        asm = Assembler(name)
        asm.movi(Reg.R0, lhs)
        asm.movi(Reg.R1, rhs)
        asm.movi(Reg.R2, 0)
        asm.cmp(Reg.R0, Reg.R1)
        getattr(asm, name)("taken")
        asm.movi(Reg.R2, 0)
        asm.b("end")
        asm.label("taken")
        asm.movi(Reg.R2, 1)
        asm.label("end")
        asm.halt()
        result = CPU(MemoryMap.stm32()).run(asm.assemble())
        outcomes[name] = bool(result.reg(Reg.R2))
        assert outcomes[name] == pythonic, (name, lhs, rhs)
