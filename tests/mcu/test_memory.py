"""Memory map, permissions, counters, and the shared-cursor allocator."""

import numpy as np
import pytest

from repro.errors import MemoryMapError
from repro.mcu.memory import Allocator, MemoryMap, Region

RAM = 0x2000_0000
FLASH = 0x0800_0000


class TestMemoryMap:
    def test_stm32_layout(self):
        memory = MemoryMap.stm32(flash_kb=128, ram_kb=16)
        assert memory.region("flash").base == FLASH
        assert memory.region("flash").size == 128 * 1024
        assert memory.region("ram").writable
        assert not memory.region("flash").writable

    def test_overlapping_regions_rejected(self):
        with pytest.raises(MemoryMapError, match="overlap"):
            MemoryMap(
                [
                    Region("a", 0, 100, writable=True),
                    Region("b", 50, 100, writable=True),
                ]
            )

    def test_unmapped_access_raises(self):
        memory = MemoryMap.stm32()
        with pytest.raises(MemoryMapError, match="unmapped"):
            memory.load(0xDEAD_0000, 4, signed=False)

    def test_access_straddling_region_end_raises(self):
        memory = MemoryMap.stm32(ram_kb=1)
        end = memory.region("ram").end
        with pytest.raises(MemoryMapError):
            memory.load(end - 2, 4, signed=False)

    def test_little_endian_load_store(self):
        memory = MemoryMap.stm32()
        memory.store(RAM, 4, 0x11223344)
        assert memory.load(RAM, 1, signed=False) == 0x44
        assert memory.load(RAM + 3, 1, signed=False) == 0x11

    def test_signed_load(self):
        memory = MemoryMap.stm32()
        memory.store(RAM, 2, 0xFFFF)
        assert memory.load(RAM, 2, signed=True) == -1
        assert memory.load(RAM, 2, signed=False) == 0xFFFF

    def test_store_to_readonly_region_raises(self):
        memory = MemoryMap.stm32()
        with pytest.raises(MemoryMapError, match="read-only"):
            memory.store(FLASH, 1, 0)

    def test_counters_track_loads_and_stores(self):
        memory = MemoryMap.stm32()
        memory.store(RAM, 4, 1)
        memory.load(RAM, 2, signed=False)
        ram = memory.region("ram")
        assert (ram.loads, ram.stores) == (1, 1)
        assert (ram.bytes_loaded, ram.bytes_stored) == (2, 4)
        memory.reset_counters()
        assert ram.loads == ram.stores == 0

    def test_write_array_read_array_roundtrip(self):
        memory = MemoryMap.stm32()
        data = np.array([-3, 0, 7, 127, -128], dtype=np.int8)
        memory.write_array(RAM, data)
        back = memory.read_array(RAM, len(data), 1, signed=True)
        assert np.array_equal(back, data)

    def test_write_array_into_flash_allowed_for_setup(self):
        # Setup-time placement bypasses the read-only rule (flashing).
        memory = MemoryMap.stm32()
        memory.write_array(FLASH, np.array([1, 2], dtype=np.uint16))
        assert memory.load(FLASH, 2, signed=False) == 1


class TestAllocator:
    def test_sequential_placement_with_alignment(self):
        memory = MemoryMap.stm32()
        alloc = Allocator(memory, "ram")
        first = alloc.reserve(3, align=1)
        second = alloc.reserve(4, align=4)
        assert first == RAM
        assert second == RAM + 4  # aligned up past the 3 bytes

    def test_two_allocators_share_a_cursor(self):
        # The regression behind multi-layer deployment: independently
        # created allocators must never hand out overlapping addresses.
        memory = MemoryMap.stm32()
        a = Allocator(memory, "ram").reserve(16)
        b = Allocator(memory, "ram").reserve(16)
        assert b >= a + 16

    def test_exhaustion_raises(self):
        memory = MemoryMap.stm32(ram_kb=1)
        alloc = Allocator(memory, "ram")
        with pytest.raises(MemoryMapError, match="exhausted"):
            alloc.reserve(2048)

    def test_place_copies_data(self):
        memory = MemoryMap.stm32()
        alloc = Allocator(memory, "ram")
        data = np.array([5, -6, 7], dtype=np.int16)
        addr = alloc.place(data)
        assert np.array_equal(
            memory.read_array(addr, 3, 2, signed=True), data
        )

    def test_used_and_free_bytes(self):
        memory = MemoryMap.stm32(ram_kb=1)
        alloc = Allocator(memory, "ram")
        alloc.reserve(100, align=1)
        assert alloc.used_bytes == 100
        assert alloc.free_bytes == 1024 - 100
