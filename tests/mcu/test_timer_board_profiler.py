"""TIM2 timer, board profiles (Table 1), and the measurement harness."""

import pytest

from repro.errors import ExecutionError
from repro.mcu.board import (
    CORTEX_M4_REFERENCE,
    MCU_CLASSES,
    STM32F072RB,
    classify_board,
    format_mcu_class_table,
)
from repro.mcu.isa import Assembler, Reg
from repro.mcu.memory import MemoryMap
from repro.mcu.profiler import Profiler
from repro.mcu.timer import Tim2


class TestTim2:
    def test_elapsed_ms_at_8mhz(self):
        timer = Tim2(8_000_000)
        timer.start()
        timer.advance(8_000)  # 1 ms of cycles
        assert timer.elapsed_ms() == pytest.approx(1.0)

    def test_wraparound_measurement(self):
        timer = Tim2(1_000_000)
        timer.advance(2**32 - 100)
        timer.start()
        timer.advance(200)  # crosses the 32-bit boundary
        assert timer.elapsed_ticks() == 200

    def test_prescaler_divides_ticks(self):
        timer = Tim2(8_000_000, prescaler=7)  # tick every 8 cycles
        timer.start()
        timer.advance(80)
        assert timer.elapsed_ticks() == 10

    def test_prescaler_residual_accumulates(self):
        timer = Tim2(1000, prescaler=1)  # tick every 2 cycles
        timer.start()
        timer.advance(3)
        timer.advance(1)
        assert timer.elapsed_ticks() == 2

    def test_errors(self):
        with pytest.raises(ExecutionError):
            Tim2(0)
        timer = Tim2(1000)
        with pytest.raises(ExecutionError):
            timer.elapsed_ticks()
        with pytest.raises(ExecutionError):
            timer.advance(-1)


class TestBoardProfiles:
    def test_stm32f072rb_matches_paper_setup(self):
        assert STM32F072RB.clock_hz == 8_000_000
        assert STM32F072RB.flash_kb == 128
        assert STM32F072RB.ram_kb == 16
        assert STM32F072RB.core == "Cortex-M0"

    def test_cycles_ms_roundtrip(self):
        cycles = 123_456
        ms = STM32F072RB.cycles_to_ms(cycles)
        assert STM32F072RB.ms_to_cycles(ms) == cycles

    def test_make_memory_uses_budgets(self):
        memory = STM32F072RB.make_memory()
        assert memory.region("flash").size == 128 * 1024
        assert memory.region("ram").size == 16 * 1024

    def test_classification_follows_table1(self):
        assert classify_board(STM32F072RB).name == "Low"
        assert classify_board(CORTEX_M4_REFERENCE).name == "Medium"

    def test_table1_has_three_classes_with_paper_examples(self):
        assert [c.name for c in MCU_CLASSES] == ["Low", "Medium", "Advanced"]
        assert "Cortex-M0" in MCU_CLASSES[0].example
        assert "Cortex-M4" in MCU_CLASSES[1].example
        assert "Cortex-M85" in MCU_CLASSES[2].example

    def test_table_renders_all_rows(self):
        text = format_mcu_class_table()
        for mcu_class in MCU_CLASSES:
            assert mcu_class.name in text


class TestProfiler:
    def _count_program(self, n):
        asm = Assembler("count")
        asm.movi(Reg.R0, n)
        asm.label("loop")
        asm.subsi(Reg.R0, Reg.R0, 1)
        asm.bgt("loop")
        asm.halt()
        return asm.assemble()

    def test_measure_is_deterministic(self):
        profiler = Profiler(STM32F072RB, MemoryMap.stm32())
        report = profiler.measure(self._count_program(50), runs=5)
        assert report.deterministic
        assert report.cycles_min == report.cycles_max
        assert report.runs == 5

    def test_latency_matches_cycles(self):
        profiler = Profiler(STM32F072RB, MemoryMap.stm32())
        report = profiler.measure(self._count_program(10), runs=3)
        expected = STM32F072RB.cycles_to_ms(round(report.cycles_mean))
        assert report.latency_ms == pytest.approx(expected)

    def test_zero_runs_rejected(self):
        profiler = Profiler(STM32F072RB, MemoryMap.stm32())
        with pytest.raises(ExecutionError):
            profiler.measure(self._count_program(1), runs=0)
