"""Layer forward/backward correctness, including numerical gradient checks.

The gradient checks compare analytic backward passes against central
finite differences of the loss.  For STE-quantized layers the *latent*
gradient is not the true gradient (that is the point of the STE), so those
layers are checked on scale/bias only plus STE-specific properties.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import (
    ActivationLayer,
    BatchNormLayer,
    DenseLayer,
    DropoutLayer,
    NeuroCLayer,
    TernaryLayer,
)
from repro.nn.losses import MeanSquaredError


def numerical_grad(f, value, epsilon=1e-4):
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        up = f()
        flat[i] = original - epsilon
        down = f()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * epsilon)
    return grad


def loss_through(layer, x, target):
    loss = MeanSquaredError()

    def f():
        return loss.forward(layer.forward(x, training=True), target)

    return f, loss


class TestDenseLayer:
    def test_forward_shape_and_value(self, rng):
        layer = DenseLayer(4, 3, rng)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        out = layer.forward(x, training=False)
        assert out.shape == (5, 3)
        expected = x @ layer.weight.value + layer.bias.value
        assert np.allclose(out, expected, atol=1e-6)

    def test_weight_and_bias_gradients(self, rng):
        layer = DenseLayer(4, 3, rng)
        x = rng.standard_normal((6, 4)).astype(np.float32)
        target = rng.standard_normal((6, 3)).astype(np.float32)
        f, loss = loss_through(layer, x, target)
        f()
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        layer.backward(loss.backward())
        num_w = numerical_grad(f, layer.weight.value)
        num_b = numerical_grad(f, layer.bias.value)
        assert np.allclose(layer.weight.grad, num_w, atol=1e-3)
        assert np.allclose(layer.bias.grad, num_b, atol=1e-3)

    def test_input_gradient(self, rng):
        layer = DenseLayer(4, 3, rng)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        target = rng.standard_normal((2, 3)).astype(np.float32)
        f, loss = loss_through(layer, x, target)
        f()
        grad_x = layer.backward(loss.backward())
        num_x = numerical_grad(f, x)
        assert np.allclose(grad_x, num_x, atol=1e-3)

    def test_invalid_dims(self, rng):
        with pytest.raises(ConfigurationError):
            DenseLayer(0, 3, rng)


class TestNeuroCLayer:
    def test_forward_matches_equation_one(self, rng):
        layer = NeuroCLayer(6, 4, rng)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        out = layer.forward(x, training=False)
        adjacency = layer.ternary_adjacency().astype(np.float32)
        expected = (x @ adjacency) * layer.scale.value + layer.bias.value
        assert np.allclose(out, expected, atol=1e-6)

    def test_scale_and_bias_gradients(self, rng):
        layer = NeuroCLayer(6, 4, rng)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        target = rng.standard_normal((5, 4)).astype(np.float32)
        f, loss = loss_through(layer, x, target)
        f()
        for p in layer.params():
            p.zero_grad()
        layer.backward(loss.backward())
        num_scale = numerical_grad(f, layer.scale.value)
        num_bias = numerical_grad(f, layer.bias.value)
        assert np.allclose(layer.scale.grad, num_scale, atol=1e-3)
        assert np.allclose(layer.bias.grad, num_bias, atol=1e-3)

    def test_adjacency_is_ternary(self, rng):
        layer = NeuroCLayer(10, 5, rng)
        assert set(np.unique(layer.ternary_adjacency())) <= {-1, 0, 1}

    def test_fixed_adjacency_has_no_latent(self, rng):
        fixed = np.zeros((6, 4), dtype=np.int8)
        fixed[0, :] = 1
        layer = NeuroCLayer(6, 4, rng, fixed_adjacency=fixed)
        assert layer.latent is None
        assert np.array_equal(layer.ternary_adjacency(), fixed)

    def test_fixed_support_learns_signs_only(self, rng):
        support = rng.random((8, 4)) < 0.4
        layer = NeuroCLayer(8, 4, rng, fixed_support=support)
        adjacency = layer.ternary_adjacency()
        assert np.array_equal(adjacency != 0, support)
        # Push latent weights and confirm support never changes.
        layer.latent.value = -np.abs(layer.latent.value)
        adjacency2 = layer.ternary_adjacency()
        assert np.array_equal(adjacency2 != 0, support)
        assert (adjacency2[support] == -1).all()

    def test_fixed_support_and_adjacency_exclusive(self, rng):
        with pytest.raises(ConfigurationError):
            NeuroCLayer(
                4, 2, rng,
                fixed_adjacency=np.zeros((4, 2), dtype=np.int8),
                fixed_support=np.ones((4, 2), dtype=bool),
            )

    def test_post_update_clips_latent(self, rng):
        layer = NeuroCLayer(6, 4, rng)
        layer.latent.value += 100.0
        layer.post_update()
        assert float(layer.latent.value.max()) <= 1.0

    def test_parameter_count_uses_paper_definition(self, rng):
        layer = NeuroCLayer(10, 5, rng)
        # neurons (scale + bias) + non-zero connections
        assert layer.parameter_count == 5 + 5 + layer.nnz

    def test_scale_gradient_flows_through_ste(self, rng):
        layer = NeuroCLayer(6, 4, rng)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        layer.forward(x, training=True)
        layer.backward(np.ones((5, 4), dtype=np.float32))
        assert np.abs(layer.latent.grad).sum() > 0


class TestTernaryLayer:
    def test_has_no_scale(self, rng):
        layer = TernaryLayer(6, 4, rng)
        assert layer.scale is None
        assert not layer.use_scale

    def test_forward_is_sum_plus_bias(self, rng):
        layer = TernaryLayer(6, 4, rng)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        out = layer.forward(x, training=False)
        expected = (
            x @ layer.ternary_adjacency().astype(np.float32)
            + layer.bias.value
        )
        assert np.allclose(out, expected, atol=1e-6)


class TestActivationLayer:
    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid",
                                      "leaky_relu", "identity"])
    def test_gradient_matches_numeric(self, name, rng):
        layer = ActivationLayer(name)
        x = rng.standard_normal((4, 5)).astype(np.float32) + 0.1
        target = rng.standard_normal((4, 5)).astype(np.float32)
        f, loss = loss_through(layer, x, target)
        f()
        grad_x = layer.backward(loss.backward())
        num_x = numerical_grad(f, x)
        assert np.allclose(grad_x, num_x, atol=1e-3)

    def test_unknown_activation(self):
        with pytest.raises(ConfigurationError):
            ActivationLayer("swish")


class TestBatchNormLayer:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNormLayer(4)
        x = rng.standard_normal((200, 4)).astype(np.float32) * 5 + 3
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNormLayer(4)
        x = rng.standard_normal((100, 4)).astype(np.float32) * 2 + 1
        for _ in range(50):
            layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert np.allclose(out.mean(axis=0), 0.0, atol=0.2)

    def test_gamma_beta_gradients(self, rng):
        layer = BatchNormLayer(3)
        x = rng.standard_normal((8, 3)).astype(np.float32)
        target = rng.standard_normal((8, 3)).astype(np.float32)
        f, loss = loss_through(layer, x, target)
        f()
        layer.gamma.zero_grad()
        layer.beta.zero_grad()
        layer.backward(loss.backward())
        assert np.allclose(
            layer.gamma.grad, numerical_grad(f, layer.gamma.value),
            atol=1e-3,
        )
        assert np.allclose(
            layer.beta.grad, numerical_grad(f, layer.beta.value), atol=1e-3
        )


class TestDropoutLayer:
    def test_identity_at_inference(self, rng):
        layer = DropoutLayer(0.5, rng)
        x = rng.standard_normal((10, 4)).astype(np.float32)
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_and_rescales(self, rng):
        layer = DropoutLayer(0.5, rng)
        x = np.ones((2000, 10), dtype=np.float32)
        out = layer.forward(x, training=True)
        kept = out != 0.0
        assert 0.35 < kept.mean() < 0.65
        assert np.allclose(out[kept], 2.0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ConfigurationError):
            DropoutLayer(1.0, rng)
