"""Quantizers, losses, optimizers, metrics, trainer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.nn.activations import softmax
from repro.nn.layers import ActivationLayer, DenseLayer, Parameter
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.metrics import (
    accuracy,
    chance_accuracy,
    confusion_matrix,
    per_class_accuracy,
)
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam
from repro.nn.quantizers import LATENT_CLIP, TernaryQuantizer
from repro.nn.trainer import TrainConfig, Trainer


class TestTernaryQuantizer:
    def test_fixed_threshold_splits_values(self):
        quantizer = TernaryQuantizer(threshold=0.5)
        latent = np.array([-0.9, -0.4, 0.0, 0.4, 0.9], dtype=np.float32)
        assert list(quantizer.quantize(latent)) == [-1, 0, 0, 0, 1]

    def test_twn_threshold_adapts_to_magnitude(self):
        quantizer = TernaryQuantizer(threshold="twn")
        small = np.full(100, 0.01, dtype=np.float32)
        large = np.full(100, 0.9, dtype=np.float32)
        assert quantizer.delta_for(small) < quantizer.delta_for(large)

    def test_sparsity_tracks_threshold(self, rng):
        latent = rng.uniform(-1, 1, 1000).astype(np.float32)
        low = TernaryQuantizer(threshold=0.1).sparsity(latent)
        high = TernaryQuantizer(threshold=0.9).sparsity(latent)
        assert high > low
        assert high == pytest.approx(0.9, abs=0.05)

    def test_grad_mask_kills_out_of_clip(self):
        quantizer = TernaryQuantizer()
        latent = np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32)
        assert list(quantizer.grad_mask(latent)) == [0.0, 1.0, 1.0, 0.0]

    def test_clip_latent(self):
        quantizer = TernaryQuantizer()
        clipped = quantizer.clip_latent(np.array([-5.0, 0.3, 5.0]))
        assert list(clipped) == [-LATENT_CLIP, 0.3, LATENT_CLIP]

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            TernaryQuantizer(threshold=1.5)
        with pytest.raises(ConfigurationError):
            TernaryQuantizer(threshold="magic")


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((4, 3)).astype(np.float32)
        targets = np.array([0, 2, 1, 1])
        loss = SoftmaxCrossEntropy()
        value = loss.forward(logits, targets)
        probs = softmax(logits.astype(np.float64))
        manual = -np.log(probs[np.arange(4), targets]).mean()
        assert value == pytest.approx(manual)

    def test_cross_entropy_gradient_numeric(self, rng):
        logits = rng.standard_normal((3, 4)).astype(np.float64)
        targets = np.array([1, 0, 3])
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, targets)
        analytic = loss.backward()
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                logits[i, j] += eps
                up = SoftmaxCrossEntropy().forward(logits, targets)
                logits[i, j] -= 2 * eps
                down = SoftmaxCrossEntropy().forward(logits, targets)
                logits[i, j] += eps
                assert analytic[i, j] == pytest.approx(
                    (up - down) / (2 * eps), abs=1e-4
                )

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.zeros(3, int))
        with pytest.raises(ConfigurationError):
            MeanSquaredError().forward(np.zeros((2, 3)), np.zeros((3, 2)))


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0], dtype=np.float32), "p")

    @pytest.mark.parametrize(
        "optimizer", [SGD(lr=0.1), SGD(lr=0.05, momentum=0.9),
                      Adam(lr=0.2)]
    )
    def test_minimizes_quadratic(self, optimizer):
        p = self._quadratic_param()
        for _ in range(200):
            p.grad = 2.0 * p.value  # d/dp of ||p||^2
            optimizer.step([p])
        assert np.abs(p.value).max() < 0.05

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=-1)
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)
        with pytest.raises(ConfigurationError):
            Adam(lr=0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == (
            pytest.approx(2 / 3)
        )

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(
            np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3
        )
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1  # true 2 predicted 1
        assert matrix.sum() == 4

    def test_per_class_accuracy_handles_missing_class(self):
        per = per_class_accuracy(np.array([0, 0]), np.array([0, 0]), 3)
        assert per[0] == 1.0
        assert np.isnan(per[1])

    def test_chance_accuracy(self):
        assert chance_accuracy(np.array([0, 0, 0, 1])) == 0.75


class TestTrainer:
    def _toy_task(self, rng, n=400):
        # Two informative dimensions, XOR-ish: needs the hidden layer.
        x = rng.uniform(-1, 1, (n, 4)).astype(np.float32)
        y = ((x[:, 0] * x[:, 1]) > 0).astype(np.int64)
        return x, y

    def test_learns_nonlinear_toy_task(self, rng):
        x, y = self._toy_task(rng)
        model = Sequential(
            [DenseLayer(4, 16, rng), ActivationLayer("relu"),
             DenseLayer(16, 2, rng)]
        )
        trainer = Trainer(model, Adam(0.01), rng=np.random.default_rng(0))
        history = trainer.fit(
            x[:300], y[:300], x[300:], y[300:],
            TrainConfig(epochs=60, batch_size=32),
        )
        assert history.best_val_accuracy > 0.9
        assert history.converged

    def test_early_stopping_triggers(self, rng):
        x, y = self._toy_task(rng, n=200)
        model = Sequential([DenseLayer(4, 2, rng)])
        trainer = Trainer(model, SGD(lr=1e-6),
                          rng=np.random.default_rng(0))
        history = trainer.fit(
            x[:150], y[:150], x[150:], y[150:],
            TrainConfig(epochs=100, patience=3),
        )
        assert history.stopped_early
        assert history.epochs_run < 100

    def test_convergence_judged_on_final_epoch(self):
        from repro.nn.trainer import History
        history = History(chance=0.5)
        history.val_accuracy = [0.9, 0.5]  # spike then collapse
        assert not history.converged
        history.val_accuracy = [0.5, 0.9]
        assert history.converged

    def test_mismatched_lengths_raise(self, rng):
        model = Sequential([DenseLayer(4, 2, rng)])
        trainer = Trainer(model)
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((3, 4)), np.zeros(2, int),
                        np.zeros((1, 4)), np.zeros(1, int))

    def test_empty_training_set_raises(self, rng):
        model = Sequential([DenseLayer(4, 2, rng)])
        with pytest.raises(TrainingError):
            Trainer(model).fit(
                np.zeros((0, 4)), np.zeros(0, int),
                np.zeros((1, 4)), np.zeros(1, int),
            )

    def test_model_summary_mentions_layers(self, rng):
        model = Sequential(
            [DenseLayer(4, 2, rng), ActivationLayer("relu")], "toy"
        )
        text = model.summary()
        assert "DenseLayer" in text
        assert "toy" in text
