"""Fixed-point helpers: Q-format, multiplier quantization, requantize."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quantize.fixed_point import (
    float_to_q,
    q_to_float,
    quantize_multiplier,
    quantize_multipliers_shared_shift,
    requantize,
)


class TestQFormat:
    def test_roundtrip_within_precision(self):
        value = 0.3125  # exactly representable in Q?.8
        fixed = float_to_q(value, frac_bits=8)
        assert q_to_float(fixed, 8) == value

    def test_overflow_raises(self):
        with pytest.raises(QuantizationError):
            float_to_q(200.0, frac_bits=8, width_bits=8)

    def test_invalid_frac_bits(self):
        with pytest.raises(QuantizationError):
            float_to_q(0.5, frac_bits=16, width_bits=16)


class TestQuantizeMultiplier:
    @settings(max_examples=100, deadline=None)
    @given(scale=st.floats(1e-6, 1e4))
    def test_relative_error_small(self, scale):
        mult, shift = quantize_multiplier(scale)
        approx = mult / (1 << shift)
        assert approx == pytest.approx(scale, rel=5e-4) or mult == 1

    def test_mult_respects_bit_budget(self):
        for bits in (4, 8, 15):
            mult, _ = quantize_multiplier(0.37, mult_bits=bits)
            assert mult < (1 << bits)

    def test_nonpositive_scale_raises(self):
        with pytest.raises(QuantizationError):
            quantize_multiplier(0.0)
        with pytest.raises(QuantizationError):
            quantize_multiplier(-1.0)

    def test_huge_scale_raises(self):
        with pytest.raises(QuantizationError):
            quantize_multiplier(1e30)


class TestSharedShift:
    def test_vector_shares_one_shift(self, rng):
        scales = rng.uniform(0.01, 0.5, size=20)
        mults, shift = quantize_multipliers_shared_shift(scales)
        assert mults.dtype == np.int16
        approx = mults.astype(np.float64) / (1 << shift)
        assert np.allclose(approx, scales, rtol=0.02, atol=1e-4)

    def test_tiny_scale_clamps_to_one(self):
        mults, shift = quantize_multipliers_shared_shift(
            np.array([1.0, 1e-12])
        )
        assert mults[1] == 1  # keeps the neuron alive rather than zeroing

    def test_empty_or_invalid(self):
        with pytest.raises(QuantizationError):
            quantize_multipliers_shared_shift(np.array([]))
        with pytest.raises(QuantizationError):
            quantize_multipliers_shared_shift(np.array([0.5, -0.1]))


class TestRequantize:
    def test_matches_scale_approximately(self, rng):
        acc = rng.integers(-10000, 10000, size=100)
        scale = 0.037
        mult, shift = quantize_multiplier(scale)
        out = requantize(acc, mult, shift)
        assert np.allclose(out, acc * scale, atol=1.0)

    def test_floor_semantics_for_negatives(self):
        # Arithmetic shift rounds toward -inf, exactly like the kernel.
        assert requantize(np.array([-3]), 1, 1)[0] == -2  # floor(-1.5)
