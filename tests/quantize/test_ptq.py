"""Post-training quantization: parity, folding rules, failure modes."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.nn.layers import (
    ActivationLayer,
    BatchNormLayer,
    DenseLayer,
    DropoutLayer,
    NeuroCLayer,
    TernaryLayer,
)
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.trainer import TrainConfig, Trainer
from repro.quantize.ptq import quantize_model


@pytest.fixture(scope="module")
def digits():
    from repro.datasets import load
    return load("digits_like", n_train=500, n_test=200, seed=9)


def _train(model, dataset, epochs=20, lr=0.006):
    x_tr, y_tr, x_val, y_val = dataset.split_validation(seed=0)
    Trainer(model, Adam(lr), rng=np.random.default_rng(2)).fit(
        x_tr, y_tr, x_val, y_val, TrainConfig(epochs=epochs)
    )
    return x_tr


class TestAccuracyParity:
    @pytest.mark.parametrize("act_width", [1, 2])
    def test_neuroc_parity(self, digits, act_width, rng):
        model = Sequential(
            [NeuroCLayer(64, 40, rng), ActivationLayer("relu"),
             NeuroCLayer(40, 10, rng)]
        )
        x_tr = _train(model, digits)
        quantized = quantize_model(model, x_tr[:200], act_width=act_width)
        float_acc = model.accuracy(digits.x_test, digits.y_test)
        int_acc = quantized.accuracy(digits.x_test, digits.y_test)
        assert int_acc >= float_acc - 0.02

    def test_tnn_uses_per_layer_multiplier(self, digits, rng):
        model = Sequential(
            [TernaryLayer(64, 40, rng), ActivationLayer("relu"),
             TernaryLayer(40, 10, rng)]
        )
        x_tr = _train(model, digits)
        quantized = quantize_model(model, x_tr[:200])
        hidden = quantized.specs[0]
        assert not hidden.per_neuron_mult       # TNN: scalar multiplier
        assert isinstance(hidden.mult, int)
        final = quantized.specs[-1]
        assert final.mult is None               # raw accumulator argmax
        assert final.act_out_width == 4

    def test_neuroc_final_layer_keeps_per_neuron_mult(self, digits, rng):
        model = Sequential(
            [NeuroCLayer(64, 24, rng), ActivationLayer("relu"),
             NeuroCLayer(24, 10, rng)]
        )
        x_tr = _train(model, digits, epochs=10)
        quantized = quantize_model(model, x_tr[:200])
        final = quantized.specs[-1]
        assert final.per_neuron_mult            # w_j applied on-device
        assert final.act_out_width == 2


class TestFoldingRules:
    def test_batchnorm_folds_into_dense(self, digits, rng):
        model = Sequential(
            [DenseLayer(64, 24, rng), BatchNormLayer(24),
             ActivationLayer("relu"), DenseLayer(24, 10, rng)]
        )
        x_tr = _train(model, digits)
        quantized = quantize_model(model, x_tr[:200])
        assert len(quantized.specs) == 2  # BN disappeared into weights
        float_acc = model.accuracy(digits.x_test, digits.y_test)
        assert quantized.accuracy(digits.x_test, digits.y_test) >= (
            float_acc - 0.03
        )

    def test_batchnorm_on_ternary_refused(self, digits, rng):
        # §3.4: BN cannot fold into ternary weights.
        model = Sequential(
            [NeuroCLayer(64, 24, rng), BatchNormLayer(24),
             ActivationLayer("relu"), NeuroCLayer(24, 10, rng)]
        )
        with pytest.raises(QuantizationError, match="batch normalization"):
            quantize_model(model, digits.x_train[:64])

    def test_dropout_is_skipped(self, digits, rng):
        model = Sequential(
            [DropoutLayer(0.2, rng), DenseLayer(64, 16, rng),
             ActivationLayer("relu"), DropoutLayer(0.2, rng),
             DenseLayer(16, 10, rng)]
        )
        x_tr = _train(model, digits, epochs=8)
        quantized = quantize_model(model, x_tr[:128])
        assert len(quantized.specs) == 2

    def test_unsupported_activation_refused(self, digits, rng):
        model = Sequential(
            [DenseLayer(64, 8, rng), ActivationLayer("tanh"),
             DenseLayer(8, 10, rng)]
        )
        with pytest.raises(QuantizationError, match="tanh"):
            quantize_model(model, digits.x_train[:64])


class TestValidation:
    def test_empty_calibration_rejected(self, rng):
        model = Sequential([DenseLayer(4, 2, rng)])
        with pytest.raises(QuantizationError):
            quantize_model(model, np.zeros((0, 4), np.float32))

    def test_all_zero_calibration_rejected(self, rng):
        model = Sequential([DenseLayer(4, 2, rng)])
        with pytest.raises(QuantizationError):
            quantize_model(model, np.zeros((8, 4), np.float32))

    def test_bad_act_width(self, rng):
        model = Sequential([DenseLayer(4, 2, rng)])
        with pytest.raises(QuantizationError):
            quantize_model(model, np.ones((8, 4), np.float32), act_width=3)

    def test_quantize_input_clips_outliers(self, digits, rng):
        model = Sequential([DenseLayer(64, 10, rng)])
        x_tr = _train(model, digits, epochs=3)
        quantized = quantize_model(model, x_tr[:64])
        wild = np.full((1, 64), 100.0, dtype=np.float32)
        q = quantized.quantize_input(wild)
        lo, hi = quantized.specs[0].act_in_range()
        assert q.max() <= hi and q.min() >= lo

    def test_saturation_keeps_inference_alive_on_outliers(self, digits,
                                                          rng):
        # Inputs beyond the calibration range must saturate (not crash).
        model = Sequential(
            [NeuroCLayer(64, 16, rng), ActivationLayer("relu"),
             NeuroCLayer(16, 10, rng)]
        )
        x_tr = _train(model, digits, epochs=5)
        quantized = quantize_model(model, x_tr[:64] * 0.3)
        prediction = quantized.predict(np.ones((2, 64), np.float32))
        assert prediction.shape == (2,)
