"""Property test: quantized inference tracks the float model.

For random small Neuro-C models (untrained — weights straight from
initialization), the int8 pipeline's logits must induce (nearly) the same
ranking as the float forward pass on in-range inputs.  This catches scale
bookkeeping errors that accuracy-level tests on trained models can mask
(a trained model's margins hide small systematic biases).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import ActivationLayer, NeuroCLayer
from repro.nn.model import Sequential
from repro.quantize.ptq import quantize_model


@st.composite
def small_models(draw):
    n_in = draw(st.integers(4, 24))
    hidden = draw(st.integers(3, 16))
    n_out = draw(st.integers(3, 6))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    model = Sequential(
        [
            NeuroCLayer(n_in, hidden, rng),
            ActivationLayer("relu"),
            NeuroCLayer(hidden, n_out, rng),
        ]
    )
    calibration = rng.uniform(0.0, 1.0, (64, n_in)).astype(np.float32)
    return model, calibration, rng


def _float_forward(model, x):
    return model.forward(x.astype(np.float32), training=False)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(data=small_models())
def test_quantized_logits_correlate_with_float(data):
    model, calibration, rng = data
    quantized = quantize_model(model, calibration, act_width=1)
    x = rng.uniform(0.0, 1.0, (16, calibration.shape[1])).astype(
        np.float32
    )
    float_logits = _float_forward(model, x)
    int_logits = quantized.forward(x).astype(np.float64)

    for i in range(len(x)):
        f = float_logits[i]
        q = int_logits[i]
        # Rows whose float logits are nearly tied carry no ranking
        # signal (quantization noise legitimately reorders them).
        if np.ptp(f) < 0.05 * max(float(np.abs(f).max()), 1e-6):
            continue
        if np.ptp(q) == 0:
            continue
        correlation = np.corrcoef(f, q)[0, 1]
        assert correlation > 0.9, (f, q)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(data=small_models())
def test_quantized_argmax_usually_matches_float(data):
    model, calibration, rng = data
    quantized = quantize_model(model, calibration, act_width=2)
    x = rng.uniform(0.0, 1.0, (32, calibration.shape[1])).astype(
        np.float32
    )
    float_logits = _float_forward(model, x)
    int_pred = quantized.predict(x)

    # Count only confident rows: where the float margin between the top
    # two classes is meaningful relative to the logit scale.
    scale = max(float(np.abs(float_logits).max()), 1e-6)
    agree = total = 0
    for i in range(len(x)):
        order = np.sort(float_logits[i])
        if (order[-1] - order[-2]) < 0.05 * scale:
            continue
        total += 1
        agree += int(int_pred[i] == int(np.argmax(float_logits[i])))
    if total:
        assert agree / total >= 0.9
