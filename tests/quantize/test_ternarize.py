"""Post-training ternarization of float models (the stage-2 PTQ proxy)."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.nn.layers import ActivationLayer, DenseLayer, NeuroCLayer
from repro.nn.model import Sequential
from repro.quantize.ptq import quantize_model, ternarize_float_model


@pytest.fixture(scope="module")
def digits():
    from repro.datasets import load
    return load("digits_like", n_train=500, n_test=200, seed=9)


def _dense_model(rng):
    return Sequential(
        [DenseLayer(64, 32, rng), ActivationLayer("relu"),
         DenseLayer(32, 10, rng)],
        name="float",
    )


class TestStructure:
    def test_produces_ternary_layers(self, trained_mlp):
        ternary = ternarize_float_model(trained_mlp.model)
        layers = ternary.neuroc_layers()
        assert len(layers) == 2
        for layer in layers:
            adjacency = layer.ternary_adjacency()
            assert set(np.unique(adjacency)) <= {-1, 0, 1}
            assert layer.nnz > 0
        assert ternary.name.endswith("-ptq-ternary")

    def test_no_dead_neurons(self, trained_mlp):
        # Even at an aggressive threshold every output column keeps its
        # strongest weight — a dead neuron would zero the activation.
        ternary = ternarize_float_model(trained_mlp.model, threshold=0.97)
        for layer in ternary.neuroc_layers():
            per_column = np.abs(layer.ternary_adjacency()).sum(axis=0)
            assert (per_column > 0).all()

    def test_density_decreases_with_threshold(self, trained_mlp):
        nnz = [
            sum(
                layer.nnz for layer in ternarize_float_model(
                    trained_mlp.model, threshold=t
                ).neuroc_layers()
            )
            for t in (0.80, 0.88, 0.94)
        ]
        assert nnz[0] > nnz[1] > nnz[2]

    def test_threshold_quantile_sets_density(self, rng):
        # On untrained (roughly uniform-magnitude) weights, keeping the
        # top (1 - t) quantile lands near density 1 - t.
        model = _dense_model(rng)
        ternary = ternarize_float_model(model, threshold=0.84)
        total = 64 * 32 + 32 * 10
        kept = sum(layer.nnz for layer in ternary.neuroc_layers())
        assert kept / total == pytest.approx(0.16, abs=0.04)

    def test_supports_restrict_the_topology(self, trained_mlp, rng):
        shapes = [(64, 24), (24, 10)]
        supports = [
            rng.random(shape) < 0.2 for shape in shapes
        ]
        ternary = ternarize_float_model(
            trained_mlp.model, supports=supports
        )
        for layer, support in zip(ternary.neuroc_layers(), supports):
            outside = np.abs(layer.ternary_adjacency())[~support]
            assert outside.sum() == 0


class TestValidation:
    def test_threshold_out_of_range(self, trained_mlp):
        with pytest.raises(QuantizationError):
            ternarize_float_model(trained_mlp.model, threshold=1.0)
        with pytest.raises(QuantizationError):
            ternarize_float_model(trained_mlp.model, threshold=-0.1)

    def test_supports_length_mismatch(self, trained_mlp):
        with pytest.raises(QuantizationError):
            ternarize_float_model(
                trained_mlp.model, supports=[np.ones((64, 24), bool)]
            )

    def test_already_ternary_model_rejected(self, rng):
        model = Sequential(
            [NeuroCLayer(64, 24, rng), ActivationLayer("relu"),
             NeuroCLayer(24, 10, rng)]
        )
        with pytest.raises(QuantizationError, match="already"):
            ternarize_float_model(model)


class TestAccuracy:
    def test_ternarized_model_exports_and_predicts(self, trained_mlp,
                                                   digits):
        ternary = ternarize_float_model(trained_mlp.model)
        quantized = quantize_model(
            ternary, digits.x_train[:200], act_width=1
        )
        accuracy = quantized.accuracy(digits.x_test, digits.y_test)
        # Far above the 10-class chance floor: ternarization keeps the
        # trained signal even without QAT.
        assert accuracy > 0.35
