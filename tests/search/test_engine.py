"""The staged engine: funnel, promotion, knobs, caching, artifacts."""

import json

import pytest

from repro.deploy.planner import DeploySLO, plan_from_catalog
from repro.errors import ConfigurationError
from repro.experiments import runner
from repro.experiments.cache import clear_memory_cache
from repro.search import (
    SearchReport,
    SearchSettings,
    catalog_entries,
    pareto_points,
    promote,
    run_search,
    sample_space,
)

SMALL = dict(
    dataset="digits_like", n_train=400, n_test=150,
    count=6, stage2_epochs=2, qat_epochs=3, lr=0.01,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()
    runner.reset_timings()
    yield
    clear_memory_cache()


class TestSettings:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SearchSettings(mode="turbo")
        with pytest.raises(ConfigurationError):
            SearchSettings(boards=())
        with pytest.raises(ConfigurationError):
            SearchSettings(boards=("NoSuchBoard",))
        with pytest.raises(ConfigurationError):
            SearchSettings(promote_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SearchSettings(min_promote=0)

    def test_env_knobs_override_fields(self, monkeypatch):
        settings = SearchSettings(count=24, stage2_epochs=8)
        monkeypatch.setenv("REPRO_SEARCH_COUNT", "5")
        monkeypatch.setenv("REPRO_SEARCH_STAGE2_EPOCHS", "3")
        assert settings.resolved_count() == 5
        assert settings.resolved_stage2_epochs() == 3

    def test_env_knobs_default_to_fields(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEARCH_COUNT", raising=False)
        monkeypatch.delenv("REPRO_SEARCH_STAGE2_EPOCHS", raising=False)
        settings = SearchSettings(count=24, stage2_epochs=8)
        assert settings.resolved_count() == 24
        assert settings.resolved_stage2_epochs() == 8

    def test_global_epoch_cap_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EPOCHS", "2")
        settings = SearchSettings(stage2_epochs=8, qat_epochs=24)
        assert settings.resolved_stage2_epochs() == 2
        assert settings.resolved_qat_epochs() == 2

    def test_bad_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_COUNT", "many")
        with pytest.raises(ConfigurationError, match="REPRO_SEARCH_COUNT"):
            SearchSettings().resolved_count()

    def test_unit_keys_embed_identity(self):
        settings = SearchSettings(**SMALL)
        spec = sample_space(1, settings.seed)[0]
        key = settings.unit_key(2, spec, "STM32F072RB", 2)
        assert key.startswith("search-v1-s2-")
        assert settings.dataset_tag in key
        assert spec.key in key
        # Seeds derive from spec identity, not sample position.
        assert settings.candidate_seed(spec) == SearchSettings(
            **SMALL
        ).candidate_seed(spec)


class TestPromote:
    ROWS = [
        {"key": "a", "fits": True, "proxy_accuracy": 0.9, "error": ""},
        {"key": "b", "fits": True, "proxy_accuracy": 0.7, "error": ""},
        {"key": "c", "fits": False, "proxy_accuracy": 0.95, "error": ""},
        {"key": "d", "fits": True, "proxy_accuracy": 0.5, "error": ""},
        {"key": "e", "fits": True, "proxy_accuracy": 0.99,
         "error": "QuantizationError: boom"},
    ]

    def test_top_fraction_promotes_fitting_first(self):
        keys = promote(self.ROWS, promote_fraction=0.5, min_promote=1)
        # 4 eligible -> quota 2; fitting candidates outrank the
        # non-fitting one regardless of its higher proxy accuracy.
        assert keys == ["a", "b"]

    def test_min_promote_floor(self):
        keys = promote(self.ROWS, promote_fraction=0.01, min_promote=3)
        assert len(keys) == 3

    def test_errored_rows_never_promote(self):
        keys = promote(self.ROWS, promote_fraction=1.0, min_promote=1)
        assert "e" not in keys and len(keys) == 4

    def test_all_errored_promotes_nothing(self):
        rows = [dict(r, error="x") for r in self.ROWS]
        assert promote(rows, 1.0, 5) == []


class TestRunSearch:
    def run(self, jobs=1, **overrides):
        params = dict(SMALL)
        params.update(overrides)
        return run_search(SearchSettings(**params), jobs=jobs)

    def test_staged_funnel_narrows(self):
        report = self.run()
        funnel = report.funnels["STM32F072RB"]
        counts = funnel.counts
        assert counts["enumerated"] == SMALL["count"]
        assert counts["stage1_admitted"] <= counts["enumerated"]
        assert counts["stage2_evaluated"] == counts["stage1_admitted"]
        assert counts["promoted"] < counts["stage2_evaluated"]
        assert counts["stage3_trained"] == counts["promoted"]
        assert 1 <= counts["frontier"] <= counts["stage3_trained"]
        # Strictly fewer full-QAT trainings than candidates: the point
        # of the staged design.
        assert report.qat_units < report.count

    def test_frontier_is_nondominated(self):
        report = self.run()
        frontier = report.funnels["STM32F072RB"].frontier
        assert pareto_points(frontier) == frontier

    def test_flat_mode_trains_everything(self):
        report = self.run(mode="flat", count=3)
        funnel = report.funnels["STM32F072RB"]
        assert funnel.stage2_evaluated == 0
        assert funnel.promoted == 3
        assert funnel.stage3_trained == 3
        assert report.mode == "flat"

    def test_warm_rerun_computes_zero_units(self):
        self.run()
        runner.reset_timings()
        clear_memory_cache()  # memo gone: only the disk cache remains
        report = self.run()
        assert sum(run.cold_units for run in runner.runs()) == 0
        assert report.qat_units > 0

    def test_rerun_is_byte_identical(self):
        first = self.run().to_json()
        clear_memory_cache()
        second = self.run().to_json()
        assert first == second

    def test_multiboard_sweep_shares_units(self):
        report = self.run(boards=("STM32F072RB", "Kinetis-K64F"),
                          count=3, mode="flat")
        assert set(report.funnels) == {"STM32F072RB", "Kinetis-K64F"}
        # Same candidates trained per board; one map_units call served
        # both boards' stage-3 sweeps.
        stage3_runs = [
            r for r in runner.runs() if r.figure == "search-stage3"
        ]
        assert len(stage3_runs) == 1
        assert stage3_runs[0].units == 6

    def test_latency_slo_screens_before_training(self):
        report = self.run(max_latency_ms=0.2)
        funnel = report.funnels["STM32F072RB"]
        assert funnel.stage1_admitted < funnel.enumerated
        rejected = [r for r in funnel.stage1 if not r["admitted"]]
        assert rejected and all(r["reason"] for r in rejected)


class TestArtifactAndCatalog:
    def test_artifact_roundtrip_feeds_planner(self, tmp_path):
        report = run_search(SearchSettings(**SMALL), jobs=1)
        path = tmp_path / "artifact.json"
        report.write_artifact(path)

        payload = json.loads(path.read_text())
        assert payload["schema"] == "search-v1"
        assert payload["qat_units"] == report.qat_units

        from repro.search import save_frontier

        frontier_path = save_frontier(
            tmp_path / "frontier.json", report.frontiers
        )
        entries = catalog_entries(frontier_path)
        assert entries
        plan = plan_from_catalog(entries, DeploySLO(max_latency_ms=50.0))
        best = max(
            (e for e in entries), key=lambda e: e["accuracy"]
        )
        assert plan.chosen.accuracy <= best["accuracy"] + 1e-9
        assert plan.chosen.feasible

    def test_report_payload_sorts_boards(self):
        report = SearchReport(
            settings=SearchSettings(**SMALL), mode="staged",
            count=0, stage2_epochs=1, qat_epochs=1, funnels={},
        )
        assert list(report.to_payload()["boards"]) == []
