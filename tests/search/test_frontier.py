"""Pareto frontier math: dominance, hypervolume, artifact roundtrip."""

import pytest

from repro.search import (
    FrontierPoint,
    catalog_entries,
    hypervolume,
    load_frontier,
    pareto_points,
    reference_point,
    save_frontier,
)


def point(key, acc, cycles, flash, board="STM32F072RB"):
    return FrontierPoint(
        key=key, board=board, accuracy=acc, cycles=cycles,
        latency_ms=cycles / 48_000.0, flash_kb=flash, nnz=100,
        spec={"strategy": "random", "hidden": [48], "threshold": 0.84,
              "encoding": "block", "act_width": 1},
    )


class TestDominance:
    def test_strict_dominance(self):
        better = point("a", 0.9, 1000, 4.0)
        worse = point("b", 0.8, 2000, 8.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a, b = point("a", 0.9, 1000, 4.0), point("b", 0.9, 1000, 4.0)
        assert not a.dominates(b) and not b.dominates(a)

    def test_tradeoffs_do_not_dominate(self):
        fast = point("fast", 0.7, 500, 2.0)
        accurate = point("acc", 0.95, 5000, 9.0)
        assert not fast.dominates(accurate)
        assert not accurate.dominates(fast)


class TestParetoPoints:
    def test_dominated_points_removed(self):
        pts = [
            point("a", 0.9, 1000, 4.0),
            point("b", 0.8, 2000, 8.0),   # dominated by a
            point("c", 0.95, 5000, 9.0),  # tradeoff: survives
        ]
        frontier = pareto_points(pts)
        assert [p.key for p in frontier] == ["a", "c"]

    def test_duplicate_objective_vectors_collapse(self):
        pts = [point("b", 0.9, 1000, 4.0), point("a", 0.9, 1000, 4.0)]
        frontier = pareto_points(pts)
        assert len(frontier) == 1
        assert frontier[0].key == "a"  # first by key

    def test_sorted_by_cycles(self):
        pts = [point("slow", 0.95, 5000, 2.0), point("fast", 0.7, 500, 9.0)]
        assert [p.key for p in pareto_points(pts)] == ["fast", "slow"]


class TestHypervolume:
    def test_single_point_box(self):
        pts = [point("a", 0.5, 100, 2.0)]
        # Box: accuracy 0.5 x cycles (1000-100) x flash (10-2).
        assert hypervolume(pts, (0.0, 1000.0, 10.0)) == pytest.approx(
            0.5 * 900 * 8
        )

    def test_superset_never_smaller(self):
        base = [point("a", 0.5, 500, 5.0)]
        more = base + [point("b", 0.9, 900, 9.0)]
        ref = reference_point(more)
        assert hypervolume(more, ref) >= hypervolume(base, ref)

    def test_dominating_point_strictly_larger(self):
        ref = (0.0, 1000.0, 10.0)
        worse = [point("w", 0.5, 500, 5.0)]
        better = [point("b", 0.7, 400, 4.0)]
        assert hypervolume(better, ref) > hypervolume(worse, ref)

    def test_dominated_point_adds_nothing(self):
        ref = (0.0, 1000.0, 10.0)
        frontier = [point("a", 0.8, 300, 3.0)]
        padded = frontier + [point("d", 0.6, 500, 5.0)]
        assert hypervolume(padded, ref) == pytest.approx(
            hypervolume(frontier, ref)
        )

    def test_out_of_ref_points_ignored(self):
        assert hypervolume(
            [point("x", 0.5, 2000, 2.0)], (0.0, 1000.0, 10.0)
        ) == 0.0
        assert hypervolume([], (0.0, 1.0, 1.0)) == 0.0

    def test_reference_point_spans_all_sets(self):
        a = [point("a", 0.5, 500, 5.0)]
        b = [point("b", 0.9, 900, 9.0)]
        acc, cycles, flash = reference_point(a, b)
        assert acc == 0.0
        assert cycles == pytest.approx(1.05 * 900)
        assert flash == pytest.approx(1.05 * 9.0)
        assert reference_point() == (0.0, 1.0, 1.0)


class TestArtifact:
    def test_save_load_roundtrip(self, tmp_path):
        frontiers = {
            "STM32F072RB": [point("a", 0.9, 1000, 4.0)],
            "Kinetis-K64F": [point("b", 0.8, 700, 3.0, "Kinetis-K64F")],
        }
        path = save_frontier(
            tmp_path / "frontier.json", frontiers, meta={"seed": 0}
        )
        assert load_frontier(path) == frontiers

    def test_artifact_is_deterministic_bytes(self, tmp_path):
        frontiers = {"STM32F072RB": [point("a", 0.9, 1000, 4.0)]}
        p1 = save_frontier(tmp_path / "one.json", frontiers)
        p2 = save_frontier(tmp_path / "two.json", frontiers)
        assert p1.read_bytes() == p2.read_bytes()

    def test_catalog_entries_flatten(self, tmp_path):
        frontiers = {
            "STM32F072RB": [point("a", 0.9, 1000, 4.0)],
            "Kinetis-K64F": [point("b", 0.8, 700, 3.0, "Kinetis-K64F")],
        }
        path = save_frontier(tmp_path / "frontier.json", frontiers)
        entries = catalog_entries(path)
        assert {e["key"] for e in entries} == {"a", "b"}
        assert all(
            {"board", "accuracy", "cycles", "flash_kb"} <= set(e)
            for e in entries
        )
