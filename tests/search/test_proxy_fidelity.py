"""PTQ-proxy fidelity regression (the ISSUE-10 ranking contract).

The staged search only works if stage-2 PTQ accuracy *ranks* candidates
the way stage-3 QAT accuracy does — the promotion rule reads ranks, not
absolute values.  This test pins that contract: over a deliberate grid
spanning the width and threshold axes, the Spearman rank correlation
between the two fidelities must stay high.  If a change to the
ternarization quantile, the quantizer, or the trainer breaks the
ranking, the staged search silently starts promoting the wrong
candidates — this is the regression that catches it.
"""

import numpy as np

from repro.experiments.runner import unit_seed
from repro.search import enumerate_space
from repro.search.stages import stage2_unit, stage3_unit

DATASET_KEY = {"name": "digits_like", "n_train": 600, "n_test": 200,
               "seed": 0}
BOARD = "STM32F072RB"
STAGE2_EPOCHS = 6
QAT_EPOCHS = 12
#: Seeds averaged per grid point: single-seed accuracies are noisy on
#: the threshold axis, and the contract is about the *expected* ranking
#: the promotion rule sees over a pool, not one draw.
SEED_REPS = 2
#: Floor for the rank correlation.  Measured ~0.98 on this grid; the
#: margin absorbs accumulation-order float drift, not real regressions.
SPEARMAN_FLOOR = 0.7


def _ranks(values: list[float]) -> np.ndarray:
    """Average-tie ranks (what ``scipy.stats.rankdata`` would give)."""
    arr = np.asarray(values, dtype=float)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(len(arr), dtype=float)
    i = 0
    while i < len(arr):
        j = i
        while j + 1 < len(arr) and arr[order[j + 1]] == arr[order[i]]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman(a: list[float], b: list[float]) -> float:
    ra, rb = _ranks(a), _ranks(b)
    return float(np.corrcoef(ra, rb)[0, 1])


def test_spearman_helper_matches_known_values():
    assert spearman([1, 2, 3], [10, 20, 30]) == 1.0
    assert spearman([1, 2, 3], [30, 20, 10]) == -1.0
    # Ties get average ranks.
    assert _ranks([1.0, 1.0, 2.0]).tolist() == [1.5, 1.5, 3.0]


def test_ptq_proxy_rank_correlates_with_qat():
    # The grid deliberately spans the axes the proxy must order:
    # capacity (hidden width) dominates accuracy, threshold modulates
    # it within a width.
    specs = enumerate_space(
        strategies=("quantization",),
        hiddens=((32,), (64,), (96,), (128,), (192,), (256,)),
        thresholds=(0.80, 0.88),
        encodings=("block",),
        act_widths=(1,),
    )
    proxy, qat = [], []
    for spec in specs:
        proxies, qats = [], []
        for rep in range(SEED_REPS):
            seed = unit_seed(f"fidelity-{spec.key}-r{rep}") % (2 ** 31)
            row2 = stage2_unit(
                spec.to_dict(), DATASET_KEY, BOARD,
                epochs=STAGE2_EPOCHS, lr=0.01, cand_seed=seed,
            )
            row3 = stage3_unit(
                spec.to_dict(), DATASET_KEY, BOARD,
                epochs=QAT_EPOCHS, lr=0.01, cand_seed=seed,
            )
            assert row2["error"] == "" and row3["error"] == ""
            proxies.append(row2["proxy_accuracy"])
            qats.append(row3["accuracy"])
        proxy.append(float(np.mean(proxies)))
        qat.append(float(np.mean(qats)))

    rho = spearman(proxy, qat)
    assert rho >= SPEARMAN_FLOOR, (
        f"stage-2 PTQ proxy no longer ranks like stage-3 QAT: "
        f"spearman={rho:.3f} < {SPEARMAN_FLOOR} "
        f"(proxy={proxy}, qat={qat})"
    )
    # The proxy is a *lower* fidelity, not a different task: full QAT
    # should beat the proxy nearly everywhere.
    assert sum(q > p for p, q in zip(proxy, qat)) >= len(specs) - 1
