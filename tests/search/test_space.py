"""CandidateSpec identity and the prefix-stable sampler."""

import pytest

from repro.errors import ConfigurationError
from repro.search import CandidateSpec, enumerate_space, sample_space


class TestCandidateSpec:
    def test_key_is_stable_and_filename_safe(self):
        spec = CandidateSpec(
            strategy="quantization", hidden=(96, 48), threshold=0.84,
            encoding="block", act_width=1,
        )
        assert spec.key == "quantization-96x48-t0.84-block-w1"
        assert "/" not in spec.key and " " not in spec.key

    def test_dict_roundtrip(self):
        spec = CandidateSpec(
            strategy="locality", hidden=(64,), threshold=0.92,
            encoding="delta", act_width=2,
        )
        assert CandidateSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("bad", [
        dict(strategy="nope", hidden=(48,), threshold=0.84,
             encoding="block", act_width=1),
        dict(strategy="random", hidden=(48,), threshold=0.84,
             encoding="nope", act_width=1),
        dict(strategy="random", hidden=(48,), threshold=0.84,
             encoding="block", act_width=3),
        dict(strategy="random", hidden=(48,), threshold=1.0,
             encoding="block", act_width=1),
        dict(strategy="random", hidden=(), threshold=0.84,
             encoding="block", act_width=1),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            CandidateSpec(**bad)

    def test_to_config_maps_threshold_to_density(self):
        spec = CandidateSpec(
            strategy="random", hidden=(48,), threshold=0.84,
            encoding="csc", act_width=1,
        )
        config = spec.to_config(64, 10, seed=7)
        assert config.strategy == "random"
        assert config.threshold == 0.84
        # density = (1 - t) / 2: 0.84 lands on the library default 0.08.
        assert config.fixed_density == pytest.approx(0.08)
        assert config.seed == 7
        assert config.name == spec.key


class TestSampleSpace:
    def test_deterministic_and_distinct(self):
        a = sample_space(16, seed=3)
        b = sample_space(16, seed=3)
        assert a == b
        assert len({s.key for s in a}) == 16
        assert sample_space(16, seed=4) != a

    def test_prefix_stable(self):
        # The staged-vs-flat benchmark contract: a smaller sample is
        # always an exact prefix of a larger one.
        small = sample_space(6, seed=0)
        large = sample_space(24, seed=0)
        assert large[:6] == small

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            sample_space(0)

    def test_exhaustion_raises(self, monkeypatch):
        # Shrink the space to one spec so the attempt cap trips fast.
        from repro.search import space

        monkeypatch.setattr(space, "STRATEGY_CHOICES", ("random",))
        monkeypatch.setattr(space, "HIDDEN_CHOICES", (32,))
        monkeypatch.setattr(space, "DEPTH_CHOICES", (1,))
        monkeypatch.setattr(space, "THRESHOLD_CHOICES", (0.84,))
        monkeypatch.setattr(space, "ENCODING_CHOICES", ("block",))
        monkeypatch.setattr(space, "ACT_WIDTH_CHOICES", (1,))
        with pytest.raises(ConfigurationError, match="exhausted"):
            space.sample_space(2)


class TestEnumerateSpace:
    def test_cartesian_product(self):
        specs = enumerate_space(
            strategies=("quantization", "random"),
            hiddens=((48,), (96,)),
            thresholds=(0.84,),
            encodings=("block",),
            act_widths=(1, 2),
        )
        assert len(specs) == 8
        assert len({s.key for s in specs}) == 8
