"""The three evaluation fidelities on a small dataset."""

import pytest

from repro.mcu.board import STM32F072RB, board_by_name
from repro.search import CandidateSpec, analytic_screen, measure_on_board
from repro.search.stages import stage2_unit, stage3_unit

DATASET_KEY = {"name": "digits_like", "n_train": 600, "n_test": 200,
               "seed": 0}


def small_spec(**overrides):
    params = dict(
        strategy="quantization", hidden=(48,), threshold=0.84,
        encoding="block", act_width=1,
    )
    params.update(overrides)
    return CandidateSpec(**params)


class TestAnalyticScreen:
    def screen(self, spec, board=STM32F072RB, **slo):
        config = spec.to_config(64, 10, seed=0)
        return analytic_screen(spec, config, board, **slo)

    def test_small_config_admitted_unconstrained(self):
        row = self.screen(small_spec())
        assert row["admitted"] and row["reason"] == ""
        assert row["cycles"] > 0 and row["flash_kb"] > 0
        assert row["board"] == "STM32F072RB"
        assert row["key"] == small_spec().key

    def test_flash_slo_rejects_large_config(self):
        row = self.screen(
            small_spec(hidden=(256, 256)), max_flash_kb=4.0
        )
        assert not row["admitted"]
        assert "KB" in row["reason"]

    def test_device_budget_rejects_big_board(self):
        big = board_by_name("STM32H747XI")
        row = self.screen(small_spec(), board=big, max_flash_kb=64.0)
        assert not row["admitted"]
        assert "device budget" in row["reason"]

    def test_latency_slo_rejects_slow_config(self):
        row = self.screen(
            small_spec(hidden=(256, 256), encoding="csc"),
            max_latency_ms=0.05,
        )
        assert not row["admitted"]
        assert "cycle" in row["reason"]

    def test_latency_screen_has_slack(self):
        # The screen admits up to 1.25x the budget: an untrained
        # adjacency only approximates the trained nnz.
        spec = small_spec()
        row = self.screen(spec)
        board = STM32F072RB
        exact_ms = row["cycles"] / board.ms_to_cycles(1.0)
        just_under = self.screen(spec, max_latency_ms=exact_ms / 1.2)
        assert just_under["admitted"]


class TestStage2Unit:
    def test_proxy_evaluation_end_to_end(self):
        row = stage2_unit(
            small_spec().to_dict(), DATASET_KEY, "STM32F072RB",
            epochs=8, lr=0.01, cand_seed=7,
        )
        assert row["error"] == ""
        assert row["stage"] == 2
        assert row["fits"] is True
        assert row["cycles"] > 0 and row["flash_kb"] > 0
        assert row["nnz"] > 0
        # The proxy is low-fidelity but far better than chance, and
        # never better than its own float parent by a wide margin.
        assert row["proxy_accuracy"] > 0.3
        assert row["float_accuracy"] > row["proxy_accuracy"] - 0.05

    def test_deterministic(self):
        args = (
            small_spec().to_dict(), DATASET_KEY, "STM32F072RB", 2, 0.01,
            7,
        )
        assert stage2_unit(*args) == stage2_unit(*args)

    def test_fixed_strategy_uses_design_time_support(self):
        row = stage2_unit(
            small_spec(strategy="random").to_dict(), DATASET_KEY,
            "STM32F072RB", epochs=2, lr=0.01, cand_seed=7,
        )
        assert row["error"] == ""
        # density = (1 - 0.84) / 2 = 0.08 of the 64x48 + 48x10 grids,
        # minus whatever the float weights zeroed; the support caps nnz.
        assert 0 < row["nnz"] <= int(0.08 * (64 * 48 + 48 * 10)) + 58


class TestStage3Unit:
    def test_full_qat_end_to_end(self):
        row = stage3_unit(
            small_spec().to_dict(), DATASET_KEY, "STM32F072RB",
            epochs=10, lr=0.01, cand_seed=7,
        )
        assert row["error"] == ""
        assert row["stage"] == 3
        assert row["fits"] is True
        assert row["accuracy"] > 0.5
        assert row["cycles"] > 0 and row["nnz"] > 0


class TestMeasureOnBoard:
    def test_measured_cycles_match_analytic(self, trained_neuroc):
        from repro.deploy.artifact import analytic_model_cycles

        quantized = trained_neuroc.quantized
        metrics = measure_on_board(quantized, "block", STM32F072RB)
        assert metrics["fits"] is True
        # The repo's latency-agreement contract: the cycle-exact
        # simulator measures exactly what the analytic model prices.
        assert metrics["cycles"] == analytic_model_cycles(
            quantized, "block", STM32F072RB
        )
        assert metrics["latency_ms"] == pytest.approx(
            STM32F072RB.cycles_to_ms(metrics["cycles"])
        )
