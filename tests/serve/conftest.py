"""Serve-test fixtures: one small verified artifact, shared, plus the
statically derived lock order the soak tests assert at runtime."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis.concurrency import analyze_paths, sanitizer_for_report
from repro.core.neuroc import NeuroCConfig, train_neuroc
from repro.serve import ModelRegistry


@pytest.fixture(scope="session")
def serve_registry():
    return ModelRegistry()


@pytest.fixture(scope="session")
def small_trained(digits_small):
    """A deliberately tiny model so interpreted inference stays fast."""
    config = NeuroCConfig(
        n_in=64, n_out=10, hidden=(16,), threshold=0.85,
        name="serve-small", seed=0,
    )
    return train_neuroc(config, digits_small, epochs=10, lr=0.01)


@pytest.fixture(scope="session")
def small_artifact(serve_registry, small_trained):
    return serve_registry.register(small_trained.quantized)


@pytest.fixture(scope="session")
def serve_concurrency_report():
    """Static concurrency analysis of repro.serve, computed once."""
    return analyze_paths([Path(repro.__file__).parent / "serve"])


@pytest.fixture
def lock_sanitizer(serve_concurrency_report):
    """A strict runtime lock-order sanitizer for one test.

    Strict mode asserts the static model exactly: serve locks are
    leaf-level (the graph has no edges), so ANY nesting of two
    sanitized locks — let alone out-of-order nesting — is a violation.
    The teardown assertion makes every soak replay that instruments
    its runtime also validate acquisition order.
    """
    sanitizer = sanitizer_for_report(serve_concurrency_report,
                                     strict=True)
    yield sanitizer
    assert sanitizer.violations == [], sanitizer.report()
