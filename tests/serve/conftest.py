"""Serve-test fixtures: one small verified artifact, shared."""

from __future__ import annotations

import pytest

from repro.core.neuroc import NeuroCConfig, train_neuroc
from repro.serve import ModelRegistry


@pytest.fixture(scope="session")
def serve_registry():
    return ModelRegistry()


@pytest.fixture(scope="session")
def small_trained(digits_small):
    """A deliberately tiny model so interpreted inference stays fast."""
    config = NeuroCConfig(
        n_in=64, n_out=10, hidden=(16,), threshold=0.85,
        name="serve-small", seed=0,
    )
    return train_neuroc(config, digits_small, epochs=10, lr=0.01)


@pytest.fixture(scope="session")
def small_artifact(serve_registry, small_trained):
    return serve_registry.register(small_trained.quantized)
