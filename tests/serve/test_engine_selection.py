"""Engine selection through the deploy/serve stack.

The fastpath engine is the default everywhere; these tests pin the
switch points — ``DeployedModel(engine=...)``, ``replica(engine=...)``,
``ServeConfig.engine`` — and that a fastpath fleet produces the same
simulated numbers as an interpreter fleet (the engines only differ in
host wall-clock, never in simulated cycles).
"""

import pytest

from repro.errors import ConfigurationError
from repro.mcu.cpu import CPU
from repro.mcu.fastpath import (
    FastCPU,
    clear_translation_cache,
    translation_cache_stats,
)
from repro.serve import ServeConfig, ServeRuntime, synthetic_trace


class TestDeployedModelEngine:
    def test_fastpath_is_the_default(self, small_artifact):
        replica = small_artifact.replica()
        assert isinstance(replica._cpu, FastCPU)

    def test_replica_engine_override(self, small_artifact):
        replica = small_artifact.replica(engine="interpreter")
        assert type(replica._cpu) is CPU

    def test_set_engine_switches_and_validates(self, small_artifact,
                                               digits_small):
        replica = small_artifact.replica()
        x = digits_small.x_test[0]
        fast = replica.infer(x)
        replica.set_engine("interpreter")
        assert type(replica._cpu) is CPU
        interp = replica.infer(x)
        assert (fast.label, fast.cycles) == (interp.label, interp.cycles)
        with pytest.raises(ConfigurationError, match="unknown engine"):
            replica.set_engine("jit")

    def test_engines_agree_per_sample(self, small_artifact, digits_small):
        fast = small_artifact.replica()
        interp = small_artifact.replica(engine="interpreter")
        for row in digits_small.x_test[:8]:
            rf, ri = fast.infer(row), interp.infer(row)
            assert rf.label == ri.label
            assert rf.cycles == ri.cycles
            assert rf.logits.tolist() == ri.logits.tolist()

    def test_replicas_share_translations(self, small_artifact):
        # The first replica to warm pays the translation misses; every
        # later replica resolves the same programs as cache hits.
        clear_translation_cache()
        warmed = small_artifact.replica().warm_translations()
        assert warmed > 0
        before = translation_cache_stats()
        assert before["misses"] == warmed
        assert small_artifact.replica().warm_translations() == warmed
        after = translation_cache_stats()
        assert after["entries"] == before["entries"]
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + warmed

    def test_interpreter_model_warms_nothing(self, small_artifact):
        replica = small_artifact.replica(engine="interpreter")
        assert replica.warm_translations() == 0


class TestServeConfigEngine:
    def test_default_and_validation(self):
        assert ServeConfig().engine == "fastpath"
        assert ServeConfig(engine="interpreter").engine == "interpreter"
        with pytest.raises(ConfigurationError, match="unknown engine"):
            ServeConfig(engine="jit")

    def test_runtime_labels_metrics_and_report(self, small_artifact,
                                               digits_small):
        trace = synthetic_trace(
            24, 400.0, 64, seed=0, inputs=digits_small.x_test
        )
        reports = {}
        for engine in ("fastpath", "interpreter"):
            runtime = ServeRuntime(
                small_artifact,
                ServeConfig(n_devices=2, engine=engine),
            )
            report = runtime.replay(trace)
            assert report.engine == engine
            assert report.metrics["labels"]["engine"] == engine
            reports[engine] = report
        fast, interp = reports["fastpath"], reports["interpreter"]
        # Same model semantics regardless of engine: every request gets
        # the same label and the same per-inference cycle count.  (Batch
        # composition depends on worker-thread timing, so aggregate
        # latency quantiles are not compared bit-for-bit.)
        assert fast.conserved and interp.conserved
        assert fast.completed == interp.completed == 24

        def by_id(report):
            return {
                o.request_id: (o.status, o.label, o.cycles)
                for o in report.outcomes
            }
        assert by_id(fast) == by_id(interp)

    def test_fleet_devices_share_translations(self, small_artifact,
                                              digits_small):
        clear_translation_cache()
        small_artifact.replica().warm_translations()
        warmed = translation_cache_stats()
        runtime = ServeRuntime(
            small_artifact, ServeConfig(n_devices=4)
        )
        trace = synthetic_trace(
            8, 400.0, 64, seed=1, inputs=digits_small.x_test
        )
        runtime.replay(trace)
        stats = translation_cache_stats()
        # Replicas reuse the warmed entries; no per-device re-translation.
        assert stats["entries"] == warmed["entries"]
        assert stats["misses"] == warmed["misses"]
        assert stats["declined"] == 0
