"""Fault injection, retry-with-backoff, and terminal failure semantics.

Covers the ISSUE-2 satellite: a device that browns out on every attempt
must surface a terminal ``ServeError`` after the retry cap — never hang
— and with fault injection enabled the conservation law
``completed + rejected + failed == offered`` still holds.
"""

import numpy as np
import pytest

from repro.errors import DeviceBrownoutError, ServeError
from repro.mcu.intermittent import IntermittentDeployment, PowerBudget
from repro.serve import (
    COMPLETED,
    FAILED,
    FaultInjector,
    FaultPlan,
    InferenceRequest,
    ServeConfig,
    ServeRuntime,
    SimulatedDevice,
    synthetic_trace,
)


def _config(**overrides):
    defaults = dict(n_devices=4, max_queue_depth=256,
                    max_queue_wait_ms=None)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestFaultInjector:
    def test_rate_zero_never_fires(self):
        injector = FaultInjector(FaultPlan(brownout_rate=0.0))
        assert not any(injector.should_brownout(0) for _ in range(100))

    def test_rate_one_always_fires_on_faulty_devices(self):
        plan = FaultPlan(brownout_rate=1.0, faulty_devices=frozenset({1}))
        injector = FaultInjector(plan)
        assert not injector.should_brownout(0)
        assert injector.should_brownout(1)

    def test_seeded_draws_are_reproducible(self):
        a = FaultInjector(FaultPlan(brownout_rate=0.5, seed=7))
        b = FaultInjector(FaultPlan(brownout_rate=0.5, seed=7))
        draws_a = [a.should_brownout(0) for _ in range(50)]
        draws_b = [b.should_brownout(0) for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)


class TestDeviceBrownout:
    def test_execute_raises_typed_brownout(self, small_artifact,
                                           digits_small):
        device = SimulatedDevice(
            device_id=3, artifact=small_artifact,
            injector=FaultInjector(FaultPlan(brownout_rate=1.0)),
        )
        request = InferenceRequest(
            request_id=0, x=digits_small.x_test[0], arrival_ms=0.0
        )
        with pytest.raises(DeviceBrownoutError) as excinfo:
            device.execute(request)
        assert excinfo.value.device_id == 3
        assert device.brownouts == 1
        assert device.clock_ms > 0.0        # wasted work is charged

    def test_starved_power_budget_browns_out(self, small_artifact,
                                             digits_small):
        deployed = small_artifact.replica()
        minimum = IntermittentDeployment(
            deployed, small_artifact.board
        ).minimum_charge_cycles()
        device = SimulatedDevice(
            device_id=0, artifact=small_artifact,
            power_budget=PowerBudget(max(1, minimum // 2)),
        )
        request = InferenceRequest(
            request_id=0, x=digits_small.x_test[0], arrival_ms=0.0
        )
        with pytest.raises(DeviceBrownoutError):
            device.execute(request)

    def test_sufficient_power_budget_completes(self, small_artifact,
                                               digits_small):
        deployed = small_artifact.replica()
        minimum = IntermittentDeployment(
            deployed, small_artifact.board
        ).minimum_charge_cycles()
        device = SimulatedDevice(
            device_id=0, artifact=small_artifact,
            power_budget=PowerBudget(minimum * 4),
        )
        request = InferenceRequest(
            request_id=0, x=digits_small.x_test[0], arrival_ms=0.0
        )
        execution = device.execute(request)
        # Intermittent execution pays checkpoint overhead on top of the
        # plain inference cycles.
        assert execution.cycles > deployed.analytic_opcount().cycles(
            small_artifact.board.costs
        )


class TestRetryOnHealthyDevice:
    def test_single_faulty_device_degrades_gracefully(
        self, small_artifact, digits_small
    ):
        plan = FaultPlan(brownout_rate=1.0, faulty_devices=frozenset({0}))
        trace = synthetic_trace(
            40, 2000.0, 64, seed=8, inputs=digits_small.x_test
        )
        runtime = ServeRuntime(
            small_artifact, _config(n_devices=3, fault_plan=plan)
        )
        report = runtime.replay(trace)
        assert report.conserved
        assert report.completed == 40        # fleet absorbed the faults
        completed_devices = {
            o.device_id for o in report.outcomes if o.status == COMPLETED
        }
        assert 0 not in completed_devices    # never completed on faulty
        retried = [o for o in report.outcomes if o.attempts > 1]
        if retried:                          # device 0 picked work up
            assert report.metrics["counters"]["requests.retries"] > 0

    def test_probabilistic_faults_conserve_requests(
        self, small_artifact, digits_small
    ):
        plan = FaultPlan(brownout_rate=0.3, seed=11)
        trace = synthetic_trace(
            60, 4000.0, 64, seed=9, inputs=digits_small.x_test
        )
        runtime = ServeRuntime(
            small_artifact,
            _config(n_devices=4, fault_plan=plan, max_retries=3),
        )
        report = runtime.replay(trace)
        assert report.conserved
        assert report.completed + report.failed == 60
        assert report.metrics["counters"]["device.brownouts"] > 0

    def test_backoff_accumulates_on_retries(self, small_artifact,
                                            digits_small):
        plan = FaultPlan(brownout_rate=1.0, faulty_devices=frozenset({0}))
        runtime = ServeRuntime(
            small_artifact,
            _config(n_devices=2, fault_plan=plan,
                    backoff_base_ms=4.0, backoff_cap_ms=16.0),
        )
        request = InferenceRequest(
            request_id=0, x=digits_small.x_test[0], arrival_ms=0.0
        )
        with runtime:
            runtime.submit(request)
        outcome = runtime.report().outcomes[0]
        assert outcome.status == COMPLETED
        if outcome.attempts > 1:             # retried off the faulty board
            assert request.backoff_ms >= 4.0


class TestTerminalFailure:
    """Brown-out on every attempt → typed terminal error, no hang."""

    def test_all_faulty_fleet_fails_after_retry_cap(
        self, small_artifact, digits_small
    ):
        plan = FaultPlan(brownout_rate=1.0)   # every device, every try
        trace = synthetic_trace(
            10, 1000.0, 64, seed=10, inputs=digits_small.x_test
        )
        runtime = ServeRuntime(
            small_artifact,
            _config(n_devices=2, fault_plan=plan, max_retries=2),
        )
        report = runtime.replay(trace)        # must terminate
        assert report.conserved
        assert report.failed == 10 and report.completed == 0
        for outcome in report.outcomes:
            assert outcome.status == FAILED
            assert outcome.attempts == 3      # initial + max_retries
            assert "retry cap" in outcome.reason
            with pytest.raises(ServeError):
                outcome.raise_for_status()

    def test_starved_intermittent_fleet_fails_terminally(
        self, small_artifact, digits_small
    ):
        deployed = small_artifact.replica()
        minimum = IntermittentDeployment(
            deployed, small_artifact.board
        ).minimum_charge_cycles()
        runtime = ServeRuntime(
            small_artifact,
            _config(
                n_devices=2,
                power_budget=PowerBudget(max(1, minimum // 2)),
                max_retries=1,
            ),
        )
        request = InferenceRequest(
            request_id=0, x=digits_small.x_test[0], arrival_ms=0.0
        )
        with runtime:
            runtime.submit(request)
        outcome = runtime.report().outcomes[0]
        assert outcome.status == FAILED
        assert outcome.attempts == 2
        with pytest.raises(ServeError):
            outcome.raise_for_status()
