"""Invariant soak: trace-derived runtime invariants under hostile load.

The ISSUE-4 harness: replay overload traces with multi-threaded
producers, EDF + deadlines, brown-out fault plans, and retries, and
assert on *every* run the invariants the tracer makes checkable:

- conservation: ``completed + rejected + failed == offered``;
- every offered request has exactly one terminal span;
- per-device spans are non-overlapping and monotone;
- no queue wait is negative;
- ``busy_ms`` equals the summed durations of execute/overhead/retry
  spans;
- utilization is within [0, 1].

Every replay additionally runs under the strict runtime lock-order
sanitizer (the ``lock_sanitizer`` fixture): the runtime's locks are
swapped for instrumented wrappers that assert the statically derived
acquisition order — serve locks are leaf-level, so any nesting at all
fails the test at teardown.

The regression classes at the bottom pin the concrete accounting and
concurrency bugs the harness was built to expose; each fails on the
pre-fix runtime.
"""

import dis
import sys
import threading
import time

import pytest

from repro.analysis.concurrency import instrument_runtime
from repro.serve import (
    DISPATCH_OVERHEAD_CYCLES,
    FAILED,
    FaultPlan,
    InferenceRequest,
    ServeConfig,
    ServeRuntime,
    SimulatedDevice,
    synthetic_trace,
    verify_trace_invariants,
)


def _assert_invariants(report):
    violations = verify_trace_invariants(report)
    assert not violations, "\n".join(violations)


def _capacity_rps(artifact, n_devices):
    return n_devices * 1000.0 / artifact.deployment.latency_ms


SCENARIOS = {
    # Underloaded FIFO fleet: the do-no-harm baseline.
    "clean_fifo": dict(
        factor=0.5, config=dict(n_devices=2, max_queue_wait_ms=None),
    ),
    # 3x overload on EDF with tight deadlines: heavy shedding at the
    # door, at dequeue, and on simulated queue wait.
    "overload_edf_deadlines": dict(
        factor=3.0, deadline_ms=6.0,
        config=dict(n_devices=2, policy="edf", max_queue_depth=32,
                    max_queue_wait_ms=15.0),
    ),
    # Probabilistic brown-outs with retries: wasted work, backoff,
    # avoid-device rerouting.
    "faults_retries": dict(
        factor=0.8,
        config=dict(n_devices=3, max_retries=3, max_queue_wait_ms=None,
                    fault_plan=FaultPlan(brownout_rate=0.3, seed=13)),
    ),
    # Everything at once: the ISSUE-4 acceptance replay — overload, EDF,
    # deadlines, brown-outs, retries, and both shed bounds.
    "brownout_edf_overload": dict(
        factor=2.0, deadline_ms=10.0,
        config=dict(n_devices=4, policy="edf", max_queue_depth=48,
                    max_retries=2, max_queue_wait_ms=20.0,
                    fault_plan=FaultPlan(brownout_rate=0.25, seed=7)),
    ),
    # ISSUE-8: fused batch dispatch on the tier-2 engine.  Overload
    # builds real batches; the invariant checks below prove the fused
    # path still stamps one execute span per request and keeps
    # busy_ms == sum of span durations.
    "fused_v2_overload": dict(
        factor=1.5,
        config=dict(n_devices=2, max_batch=16, engine="fastpath-v2"),
    ),
}


class TestSoakScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_invariants_hold(self, name, small_artifact, digits_small,
                             lock_sanitizer):
        scenario = SCENARIOS[name]
        rate = scenario["factor"] * _capacity_rps(
            small_artifact, scenario["config"]["n_devices"]
        )
        trace = synthetic_trace(
            120, rate, 64, seed=sum(map(ord, name)) % 1000,
            deadline_ms=scenario.get("deadline_ms"),
            inputs=digits_small.x_test,
        )
        config = dict(max_queue_depth=256)
        config.update(scenario["config"])
        runtime = ServeRuntime(small_artifact, ServeConfig(**config))
        instrument_runtime(runtime, lock_sanitizer)
        report = runtime.replay(trace)
        assert report.offered == 120
        _assert_invariants(report)
        if config.get("engine") == "fastpath-v2":
            assert report.metrics["counters"].get("batches.fused", 0) > 0

    def test_multi_producer_overload_invariants(self, small_artifact,
                                                digits_small,
                                                lock_sanitizer):
        """Concurrent producers + faults + deadlines, unpaced flood."""
        trace = synthetic_trace(
            160, 4.0 * _capacity_rps(small_artifact, 2), 64, seed=29,
            deadline_ms=12.0, inputs=digits_small.x_test,
        )
        runtime = ServeRuntime(
            small_artifact,
            ServeConfig(
                n_devices=2, policy="edf", max_queue_depth=32,
                max_retries=2, max_queue_wait_ms=25.0,
                fault_plan=FaultPlan(brownout_rate=0.2, seed=31),
            ),
        )
        instrument_runtime(runtime, lock_sanitizer)
        n_producers = 4
        with runtime:
            threads = [
                threading.Thread(
                    target=lambda i=i: [
                        runtime.submit(request)
                        for request in trace[i::n_producers]
                    ]
                )
                for i in range(n_producers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        report = runtime.report()
        assert report.offered == 160
        _assert_invariants(report)


class TestConcurrentSubmitAccounting:
    """ISSUE-4 satellite: `submit()` tallies must be lock-protected.

    Pre-fix, ``self._offered += 1`` and the ``_last_arrival_ms`` update
    raced across producer threads, lost updates, and silently broke the
    conservation law.

    CPython only switches threads at bytecode safe points (RESUME and
    backward jumps), and the racy read-modify-write compiles to
    straight-line bytecode — so on today's interpreter the window never
    opens by itself, and naive hammering passes even on broken code.
    The test opens the window deliberately: an opcode-level trace hook
    scoped to ``submit`` frames parks each thread (GIL released) at the
    exact boundary between reading ``_offered`` and storing it back —
    the interleaving a free-threaded build permits natively.  Pre-fix,
    every increment other threads complete during the park is clobbered
    by the stale store.  Post-fix the store happens under the lock, so
    parking there merely serializes producers and every count survives.
    """

    def test_offered_counts_every_concurrent_submit(self, small_artifact,
                                                    digits_small):
        runtime = ServeRuntime(
            small_artifact,
            ServeConfig(n_devices=1, max_queue_depth=2,
                        max_queue_wait_ms=None),
        )
        n_threads, per_thread = 4, 250
        x = digits_small.x_test[0]

        submit_code = ServeRuntime.submit.__code__
        # The opcode event fires *before* the instruction executes, so
        # pausing at STORE_ATTR _offered sits between read and write.
        store_offsets = {
            ins.offset
            for ins in dis.get_instructions(submit_code)
            if ins.opname == "STORE_ATTR" and ins.argval == "_offered"
        }
        assert store_offsets, "submit() no longer stores _offered?"

        def preempt(frame, event, arg):
            if frame.f_code is submit_code:
                frame.f_trace_opcodes = True
                if event == "opcode" and frame.f_lasti in store_offsets:
                    time.sleep(0.0003)
                return preempt
            return None

        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)   # switch at (nearly) every chance
        threading.settrace(preempt)
        try:
            with runtime:
                def produce(worker: int) -> None:
                    for i in range(per_thread):
                        runtime.submit(
                            InferenceRequest(
                                request_id=worker * per_thread + i,
                                x=x,
                                arrival_ms=float(i),
                            )
                        )

                threads = [
                    threading.Thread(target=produce, args=(w,))
                    for w in range(n_threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        finally:
            threading.settrace(None)
            sys.setswitchinterval(interval)
        report = runtime.report()
        assert report.offered == n_threads * per_thread
        assert report.conserved
        assert report.metrics["counters"]["requests.offered"] \
            == n_threads * per_thread


class TestDispatchOverheadAccounting:
    """ISSUE-4 satellite: overhead is charged on the post-jump timeline.

    Pre-fix, ``begin_dispatch`` advanced the clock *before* the idle
    jump in ``execute``, so an idle device absorbed the overhead into
    the idle gap while still counting it as busy time.
    """

    def test_idle_device_overhead_not_absorbed(self, small_artifact,
                                               digits_small):
        device = SimulatedDevice(device_id=0, artifact=small_artifact)
        request = InferenceRequest(
            request_id=0, x=digits_small.x_test[0], arrival_ms=100.0
        )
        overhead_ms = small_artifact.board.cycles_to_ms(
            DISPATCH_OVERHEAD_CYCLES
        )
        device.begin_dispatch(request.earliest_start_ms)
        # The idle jump happens first; only then is overhead charged.
        assert device.clock_ms == pytest.approx(100.0 + overhead_ms)
        execution = device.execute(request)
        assert execution.start_ms == pytest.approx(100.0 + overhead_ms)
        # Busy time equals occupied timeline: nothing busy inside the
        # idle gap [0, 100).
        assert device.busy_ms == pytest.approx(device.clock_ms - 100.0)

    def test_fleet_busy_equals_summed_spans(self, small_artifact,
                                            digits_small):
        # The soak invariant that pins the bug fleet-wide: busy_ms must
        # equal the summed execute/overhead/retry span durations even
        # when devices repeatedly go idle between sparse arrivals.
        trace = synthetic_trace(
            40, 0.3 * _capacity_rps(small_artifact, 2), 64, seed=37,
            inputs=digits_small.x_test,
        )
        report = ServeRuntime(
            small_artifact,
            ServeConfig(n_devices=2, max_queue_wait_ms=None),
        ).replay(trace)
        assert report.completed == 40
        _assert_invariants(report)


class TestRetryPastDeadline:
    """ISSUE-4 satellite: a retried request can never be *rejected*.

    Admission is decided once, at the door.  Pre-fix, a brown-out retry
    whose backoff pushed it past its deadline was recorded as REJECTED
    at dequeue, contradicting the scheduler contract.
    """

    def test_retry_past_deadline_fails_not_rejected(self, small_artifact,
                                                    digits_small):
        runtime = ServeRuntime(
            small_artifact,
            ServeConfig(
                n_devices=2, max_retries=3, backoff_base_ms=5.0,
                max_queue_wait_ms=None,
                fault_plan=FaultPlan(brownout_rate=1.0),   # every device
            ),
        )
        request = InferenceRequest(
            request_id=0, x=digits_small.x_test[0], arrival_ms=0.0,
            deadline_ms=1.0,   # < backoff: the retry is born expired
        )
        with runtime:
            runtime.submit(request)
        report = runtime.report()
        outcome = report.outcomes[0]
        assert outcome.status == FAILED
        assert outcome.reason == "deadline_after_retry"
        assert outcome.attempts == 2          # first try + expired retry
        counters = report.metrics["counters"]
        assert counters["failed.deadline_after_retry"] == 1
        assert counters.get("rejected.deadline", 0) == 0
        _assert_invariants(report)

    def test_deadline_after_retry_under_fault_plan(self, small_artifact,
                                                   digits_small):
        # Sustained load + tight deadlines + a device that always browns
        # out: the shed/fail split must keep rejected == first-attempt
        # decisions and failed == post-admission outcomes.
        trace = synthetic_trace(
            60, _capacity_rps(small_artifact, 2), 64, seed=41,
            deadline_ms=4.0, inputs=digits_small.x_test,
        )
        runtime = ServeRuntime(
            small_artifact,
            ServeConfig(
                n_devices=2, policy="edf", max_retries=2,
                backoff_base_ms=6.0, max_queue_wait_ms=None,
                fault_plan=FaultPlan(
                    brownout_rate=1.0, faulty_devices=frozenset({0})
                ),
            ),
        )
        report = runtime.replay(trace)
        _assert_invariants(report)
        for outcome in report.outcomes:
            if outcome.reason == "deadline_after_retry":
                assert outcome.status == FAILED
                assert outcome.attempts > 1
            if outcome.status == "rejected":
                assert outcome.attempts <= 1
