"""The metrics layer: counters, gauges, histograms, snapshots."""

import json
import sys
import threading

from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_thread_safe(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_gauge_set_add(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.add(1.5)
        assert gauge.value == 5.0


class TestHistogram:
    def test_exact_quantiles_small_n(self):
        hist = Histogram()
        for value in range(1, 101):          # 1..100
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] in (50.0, 51.0)
        assert summary["p95"] in (95.0, 96.0)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_histogram_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_summary_is_one_consistent_snapshot(self):
        """ISSUE-4 satellite: all summary fields from ONE lock hold.

        A single writer observes the sequence 0, 1, 2, ..., so at every
        instant the histogram satisfies ``max == count - 1`` exactly.
        Pre-fix, ``summary()`` read ``count`` under the lock but
        ``_min``/``_max`` (and the quantile reservoir) *after* releasing
        it, so a concurrent ``observe()`` produced summaries mixing two
        instants — detectable as ``max > count - 1``.
        """
        # Small reservoir: the tear detector only needs count/min/max,
        # and a small capacity keeps the per-summary sort cheap.
        hist = Histogram(capacity=512)
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                hist.observe(float(value))
                value += 1

        thread = threading.Thread(target=writer)
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        torn = []
        try:
            thread.start()
            for _ in range(2000):
                summary = hist.summary()
                if summary["count"] == 0:
                    continue
                if summary["max"] != summary["count"] - 1:
                    torn.append(summary)
                if not (summary["min"] <= summary["p50"]
                        <= summary["p95"] <= summary["p99"]
                        <= summary["max"]):
                    torn.append(summary)
        finally:
            stop.set()
            thread.join()
            sys.setswitchinterval(interval)
        assert not torn, f"torn summaries: {torn[:3]}"

    def test_reservoir_keeps_count_past_capacity(self):
        hist = Histogram(capacity=16)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000
        assert len(hist._samples) == 16
        summary = hist.summary()
        assert summary["min"] == 0.0 and summary["max"] == 999.0


class TestRegistry:
    def test_same_name_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("latency_ms").observe(1.5)
        snapshot = registry.snapshot()
        encoded = json.loads(json.dumps(snapshot))
        assert encoded["counters"]["requests"] == 3
        assert encoded["gauges"]["depth"] == 7
        assert encoded["histograms"]["latency_ms"]["count"] == 1
