"""The metrics layer: counters, gauges, histograms, snapshots."""

import json
import sys
import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RateView,
)


class TestCounterGauge:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_thread_safe(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_gauge_set_add(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.add(1.5)
        assert gauge.value == 5.0


class TestHistogram:
    def test_exact_quantiles_small_n(self):
        hist = Histogram()
        for value in range(1, 101):          # 1..100
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] in (50.0, 51.0)
        assert summary["p95"] in (95.0, 96.0)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_histogram_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_summary_is_one_consistent_snapshot(self):
        """ISSUE-4 satellite: all summary fields from ONE lock hold.

        A single writer observes the sequence 0, 1, 2, ..., so at every
        instant the histogram satisfies ``max == count - 1`` exactly.
        Pre-fix, ``summary()`` read ``count`` under the lock but
        ``_min``/``_max`` (and the quantile reservoir) *after* releasing
        it, so a concurrent ``observe()`` produced summaries mixing two
        instants — detectable as ``max > count - 1``.
        """
        # Small reservoir: the tear detector only needs count/min/max,
        # and a small capacity keeps the per-summary sort cheap.
        hist = Histogram(capacity=512)
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                hist.observe(float(value))
                value += 1

        thread = threading.Thread(target=writer)
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        torn = []
        try:
            thread.start()
            for _ in range(2000):
                summary = hist.summary()
                if summary["count"] == 0:
                    continue
                if summary["max"] != summary["count"] - 1:
                    torn.append(summary)
                if not (summary["min"] <= summary["p50"]
                        <= summary["p95"] <= summary["p99"]
                        <= summary["max"]):
                    torn.append(summary)
        finally:
            stop.set()
            thread.join()
            sys.setswitchinterval(interval)
        assert not torn, f"torn summaries: {torn[:3]}"

    def test_reservoir_keeps_count_past_capacity(self):
        hist = Histogram(capacity=16)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000
        assert len(hist._samples) == 16
        summary = hist.summary()
        assert summary["min"] == 0.0 and summary["max"] == 999.0


class TestRegistry:
    def test_same_name_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("latency_ms").observe(1.5)
        snapshot = registry.snapshot()
        encoded = json.loads(json.dumps(snapshot))
        assert encoded["counters"]["requests"] == 3
        assert encoded["gauges"]["depth"] == 7
        assert encoded["histograms"]["latency_ms"]["count"] == 1


class TestRateView:
    def test_windowed_rate_over_steady_increments(self):
        counter = Counter()
        view = RateView(counter, window_ms=100.0)
        # 10 increments every 10 ms -> 1000 increments/s.
        for tick in range(0, 200, 10):
            view.sample(float(tick))
            counter.inc(10)
        view.sample(200.0)
        assert view.rate_per_s() == pytest.approx(1000.0)
        assert view.ewma_per_s == pytest.approx(1000.0)

    def test_window_prunes_old_samples(self):
        counter = Counter()
        view = RateView(counter, window_ms=50.0)
        counter.inc(1000)
        view.sample(0.0)                 # burst long before the window
        for tick in range(100, 200, 10):
            view.sample(float(tick))     # counter flat ever since
        assert view.rate_per_s() == 0.0

    def test_non_advancing_time_ignored(self):
        counter = Counter()
        view = RateView(counter)
        view.sample(10.0)
        counter.inc(5)
        view.sample(10.0)                # same instant: dropped
        view.sample(5.0)                 # going backwards: dropped
        assert view.rate_per_s() == 0.0  # still a single sample

    def test_cold_view_reads_zero(self):
        view = RateView(Counter())
        assert view.rate_per_s() == 0.0
        assert view.ewma_per_s == 0.0
        summary = view.summary()
        assert summary == {"windowed_per_s": 0.0, "ewma_per_s": 0.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RateView(Counter(), window_ms=0.0)
        with pytest.raises(ConfigurationError):
            RateView(Counter(), alpha=0.0)
        with pytest.raises(ConfigurationError):
            RateView(Counter(), alpha=1.5)

    def test_registry_hands_out_one_view_per_name(self):
        registry = MetricsRegistry()
        view = registry.rate_view("requests.offered")
        again = registry.rate_view("requests.offered")
        assert view is again
        registry.counter("requests.offered").inc(10)
        view.sample(0.0)
        registry.counter("requests.offered").inc(10)
        view.sample(10.0)
        snapshot = registry.snapshot()
        assert snapshot["rates"]["requests.offered"][
            "windowed_per_s"
        ] == pytest.approx(1000.0)

    def test_no_torn_reads_under_hammer(self):
        """ISSUE-7 satellite: windowed rates stay sane mid-increment.

        One writer increments the counter monotonically while a sampler
        advances simulated time and reads rates at a hostile thread
        switch interval.  A torn read would surface as a negative or
        non-finite rate (a sample pair whose counter values ran
        backwards) -- monotone counters can never yield one.
        """
        import math

        counter = Counter()
        view = RateView(counter, window_ms=5.0)
        stop = threading.Event()
        torn = []

        def sampler():
            now = 0.0
            while not stop.is_set():
                now += 0.01
                view.sample(now)
                windowed = view.rate_per_s()
                ewma = view.ewma_per_s
                if windowed < 0.0 or not math.isfinite(windowed):
                    torn.append(("windowed", windowed))
                if ewma < 0.0 or not math.isfinite(ewma):
                    torn.append(("ewma", ewma))

        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        thread = threading.Thread(target=sampler)
        thread.start()
        try:
            for _ in range(20_000):
                counter.inc()
        finally:
            stop.set()
            thread.join()
            sys.setswitchinterval(interval)
        assert not torn, f"torn rates: {torn[:3]}"
        assert counter.value == 20_000
