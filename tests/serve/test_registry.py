"""Model registry: content addressing, kernel cache, replicas."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import ModelRegistry, content_hash


class TestContentHash:
    def test_stable_across_calls(self, small_trained):
        first = content_hash(small_trained.quantized)
        second = content_hash(small_trained.quantized)
        assert first == second
        assert len(first) == 64          # sha256 hex

    def test_sensitive_to_deploy_parameters(self, small_trained):
        quantized = small_trained.quantized
        assert content_hash(quantized, "block") != \
            content_hash(quantized, "csc")
        assert content_hash(quantized, block_size=256) != \
            content_hash(quantized, block_size=128)

    def test_sensitive_to_weights(self, small_trained, trained_neuroc):
        assert content_hash(small_trained.quantized) != \
            content_hash(trained_neuroc.quantized)


class TestRegistryCache:
    def test_identical_content_never_recodegens(self, small_trained):
        registry = ModelRegistry()
        first = registry.register(small_trained.quantized)
        second = registry.register(small_trained.quantized)
        assert first is second           # same artifact object: cached
        assert registry.cache_hits == 1
        assert len(registry) == 1

    def test_verified_by_construction(self, small_artifact):
        assert small_artifact.deployment.verified

    def test_get_unknown_id_is_typed(self):
        with pytest.raises(ConfigurationError):
            ModelRegistry().get("deadbeef" * 8)


class TestReplicas:
    def test_replica_is_independent_state(self, small_artifact,
                                           digits_small):
        a = small_artifact.replica()
        b = small_artifact.replica()
        assert a is not b
        assert a.memory is not b.memory  # own RAM per board
        x = digits_small.x_test[0]
        ra, rb = a.infer(x), b.infer(x)
        assert ra.label == rb.label
        assert ra.cycles == rb.cycles

    def test_replica_matches_reference_backend(self, small_artifact,
                                               small_trained,
                                               digits_small):
        replica = small_artifact.replica()
        x = digits_small.x_test[:10]
        on_device = np.array([replica.infer(row).label for row in x])
        reference = small_trained.quantized.predict(x)
        assert np.array_equal(on_device, reference)
