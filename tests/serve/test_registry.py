"""Model registry: content addressing, kernel cache, replicas."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import ModelRegistry, content_hash


class TestContentHash:
    def test_stable_across_calls(self, small_trained):
        first = content_hash(small_trained.quantized)
        second = content_hash(small_trained.quantized)
        assert first == second
        assert len(first) == 64          # sha256 hex

    def test_sensitive_to_deploy_parameters(self, small_trained):
        quantized = small_trained.quantized
        assert content_hash(quantized, "block") != \
            content_hash(quantized, "csc")
        assert content_hash(quantized, block_size=256) != \
            content_hash(quantized, block_size=128)

    def test_sensitive_to_weights(self, small_trained, trained_neuroc):
        assert content_hash(small_trained.quantized) != \
            content_hash(trained_neuroc.quantized)

    def test_board_identity_is_the_full_profile(self, small_trained):
        """ISSUE-9 satellite (pre-fix failing): two boards sharing a
        name and clock but differing in wait states, memory budget, or
        capability flags are different latency models and must never
        collide to one model_id."""
        from dataclasses import replace

        from repro.mcu import STM32F072RB, CycleCosts

        quantized = small_trained.quantized
        base = content_hash(quantized, board=STM32F072RB)
        wait_states = replace(
            STM32F072RB, costs=CycleCosts(fetch_extra=1)
        )
        assert content_hash(quantized, board=wait_states) != base
        assert content_hash(
            quantized, board=replace(STM32F072RB, flash_kb=256)
        ) != base
        assert content_hash(
            quantized, board=replace(STM32F072RB, ram_kb=32)
        ) != base
        assert content_hash(
            quantized, board=replace(STM32F072RB, has_fpu=True)
        ) != base
        assert content_hash(
            quantized, board=replace(STM32F072RB, has_dsp=True)
        ) != base
        assert content_hash(
            quantized, board=replace(STM32F072RB, has_muls=False)
        ) != base
        assert content_hash(
            quantized, board=replace(STM32F072RB, ram_base=0x8000_0000)
        ) != base

    def test_registering_on_two_cost_tables_yields_two_artifacts(
        self, small_trained
    ):
        """End-to-end: the registry serves distinct artifacts (and so
        distinct per-board latency models) for wait-state variants."""
        from dataclasses import replace

        from repro.mcu import STM32F072RB, CycleCosts
        from repro.serve import ModelRegistry

        registry = ModelRegistry()
        m0 = registry.register(small_trained.quantized)
        slow_flash = registry.register(
            small_trained.quantized,
            board=replace(
                STM32F072RB, name=STM32F072RB.name,
                costs=CycleCosts(fetch_extra=1),
            ),
        )
        assert m0.model_id != slow_flash.model_id
        assert len(registry) == 2
        assert slow_flash.deployment.latency_ms > m0.deployment.latency_ms


class TestRegistryCache:
    def test_identical_content_never_recodegens(self, small_trained):
        registry = ModelRegistry()
        first = registry.register(small_trained.quantized)
        second = registry.register(small_trained.quantized)
        assert first is second           # same artifact object: cached
        assert registry.cache_hits == 1
        assert len(registry) == 1

    def test_verified_by_construction(self, small_artifact):
        assert small_artifact.deployment.verified

    def test_get_unknown_id_is_typed(self):
        with pytest.raises(ConfigurationError):
            ModelRegistry().get("deadbeef" * 8)


class TestReplicas:
    def test_replica_is_independent_state(self, small_artifact,
                                           digits_small):
        a = small_artifact.replica()
        b = small_artifact.replica()
        assert a is not b
        assert a.memory is not b.memory  # own RAM per board
        x = digits_small.x_test[0]
        ra, rb = a.infer(x), b.infer(x)
        assert ra.label == rb.label
        assert ra.cycles == rb.cycles

    def test_replica_matches_reference_backend(self, small_artifact,
                                               small_trained,
                                               digits_small):
        replica = small_artifact.replica()
        x = digits_small.x_test[:10]
        on_device = np.array([replica.infer(row).label for row in x])
        reference = small_trained.quantized.predict(x)
        assert np.array_equal(on_device, reference)


class TestRefcountedEviction:
    """ISSUE-7 satellite: release()/eviction of retired artifacts."""

    def test_register_acquire_release_counts(self, small_trained):
        registry = ModelRegistry()
        artifact = registry.register(small_trained.quantized)
        assert registry.refcount(artifact.model_id) == 1
        assert registry.acquire(artifact.model_id) is artifact
        assert registry.refcount(artifact.model_id) == 2
        assert registry.release(artifact.model_id) is False
        assert registry.refcount(artifact.model_id) == 1
        assert len(registry) == 1
        assert registry.evictions == 0

    def test_last_release_evicts_and_frees_kernel_cache(
        self, small_trained
    ):
        from repro.mcu.fastpath import translation_cache_stats

        registry = ModelRegistry()
        artifact = registry.register(small_trained.quantized)
        # register() warms one tier-1 translation per layer program.
        # (Assert per tier: earlier tests may have left tier-2 entries
        # for this model, which release() also drops — pinned by
        # test_last_release_evicts_both_translation_tiers below.)
        before = translation_cache_stats()["v1"]["entries"]
        assert registry.release(artifact.model_id) is True
        assert registry.refcount(artifact.model_id) == 0
        assert len(registry) == 0
        assert registry.evictions == 1
        after = translation_cache_stats()["v1"]["entries"]
        assert after == before - len(artifact.deployed.images)
        with pytest.raises(ConfigurationError):
            registry.get(artifact.model_id)

    def test_last_release_evicts_both_translation_tiers(
        self, small_trained
    ):
        """A v2-registered model warms tier-1 translations *and* tier-2
        specializations; release() must drop both, or retired blue/green
        replicas would pin specialized kernels forever."""
        from repro.mcu.fastpath import translation_cache_stats

        registry = ModelRegistry()
        artifact = registry.register(
            small_trained.quantized, engine="fastpath-v2"
        )
        layers = len(artifact.deployed.images)
        before = translation_cache_stats()
        assert before["v1"]["entries"] >= layers
        assert before["v2"]["entries"] >= layers
        assert registry.release(artifact.model_id) is True
        after = translation_cache_stats()
        assert after["v1"]["entries"] == before["v1"]["entries"] - layers
        assert after["v2"]["entries"] == before["v2"]["entries"] - layers
        assert after["entries"] == before["entries"] - 2 * layers

    def test_acquire_or_release_after_eviction_is_typed(
        self, small_trained
    ):
        registry = ModelRegistry()
        artifact = registry.register(small_trained.quantized)
        registry.release(artifact.model_id)
        with pytest.raises(ConfigurationError):
            registry.acquire(artifact.model_id)
        with pytest.raises(ConfigurationError):
            registry.release(artifact.model_id)

    def test_rollback_reregisters_bit_identically(
        self, small_trained, digits_small
    ):
        """Evict, then re-register the same content: same hash, same
        bits — the rollback path restores an identical deployment."""
        registry = ModelRegistry()
        first = registry.register(small_trained.quantized)
        model_id = first.model_id
        flash_before = [
            bytes(image.program.encode())
            if hasattr(image.program, "encode") else None
            for image in first.deployed.images
        ]
        x = digits_small.x_test[0]
        result_before = first.replica().infer(x)
        registry.release(model_id)
        assert len(registry) == 0

        second = registry.register(small_trained.quantized)
        assert second.model_id == model_id       # same content hash
        assert second is not first               # genuinely rebuilt
        assert registry.refcount(model_id) == 1
        result_after = second.replica().infer(x)
        assert result_after.label == result_before.label
        assert result_after.cycles == result_before.cycles
        assert np.array_equal(result_after.logits, result_before.logits)
        flash_after = [
            bytes(image.program.encode())
            if hasattr(image.program, "encode") else None
            for image in second.deployed.images
        ]
        assert flash_after == flash_before
