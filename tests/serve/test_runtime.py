"""The serving runtime end to end: conservation, scheduling, metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    COMPLETED,
    REJECTED,
    InferenceRequest,
    ServeConfig,
    ServeRuntime,
    synthetic_trace,
)


def _runtime(artifact, **overrides):
    defaults = dict(n_devices=4, max_queue_depth=256,
                    max_queue_wait_ms=None)
    defaults.update(overrides)
    return ServeRuntime(artifact, ServeConfig(**defaults))


class TestReplayHappyPath:
    def test_underloaded_fleet_completes_everything(self, small_artifact,
                                                    digits_small):
        trace = synthetic_trace(
            60, 1000.0, 64, seed=1, inputs=digits_small.x_test
        )
        report = _runtime(small_artifact).replay(trace)
        assert report.conserved
        assert report.completed == 60
        assert report.rejected == 0 and report.failed == 0
        assert report.throughput_rps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p95"] \
            <= report.latency_ms["p99"]
        for value in report.device_utilization.values():
            assert 0.0 <= value <= 1.0

    def test_labels_match_reference_backend(self, small_artifact,
                                            small_trained, digits_small):
        x = digits_small.x_test[:40]
        trace = synthetic_trace(40, 2000.0, 64, seed=2, inputs=x)
        report = _runtime(small_artifact).replay(trace)
        reference = small_trained.quantized.predict(x)
        by_id = {o.request_id: o for o in report.outcomes}
        for i in range(40):
            assert by_id[i].status == COMPLETED
            assert by_id[i].label == reference[i % len(x)]

    def test_every_offered_request_has_one_outcome(self, small_artifact,
                                                   digits_small):
        trace = synthetic_trace(
            50, 4000.0, 64, seed=3, inputs=digits_small.x_test
        )
        report = _runtime(small_artifact).replay(trace)
        ids = [o.request_id for o in report.outcomes]
        assert sorted(ids) == list(range(50))        # exactly once each


class TestAdmissionControl:
    def test_burst_overflows_bounded_queue(self, small_artifact,
                                           digits_small):
        # All requests arrive at (nearly) the same instant: an
        # instantaneous burst far beyond the queue bound must shed with
        # typed rejections, not queue without bound.
        trace = synthetic_trace(
            80, 1e6, 64, seed=4, inputs=digits_small.x_test
        )
        report = _runtime(
            small_artifact, n_devices=2, max_queue_depth=8
        ).replay(trace)
        assert report.conserved
        assert report.rejected > 0
        reasons = {
            o.reason for o in report.outcomes if o.status == REJECTED
        }
        assert reasons <= {"queue_full", "queue_wait"}
        assert "queue_full" in reasons

    def test_sustained_overload_sheds_on_sim_queue_wait(
        self, small_artifact, digits_small
    ):
        capacity_rps = 1000.0 / small_artifact.deployment.latency_ms
        trace = synthetic_trace(
            150, 3.0 * capacity_rps, 64, seed=5,
            inputs=digits_small.x_test,
        )
        report = _runtime(
            small_artifact, n_devices=1, max_queue_wait_ms=5.0
        ).replay(trace)
        assert report.conserved
        assert report.rejected > 0
        assert report.metrics["counters"].get("rejected.queue_wait", 0) > 0

    def test_deadline_shedding(self, small_artifact, digits_small):
        # Sub-service-time deadlines under load: late requests shed.
        latency_ms = small_artifact.deployment.latency_ms
        trace = synthetic_trace(
            60, 20.0 / latency_ms * 1000.0, 64, seed=6,
            deadline_ms=latency_ms * 1.5, inputs=digits_small.x_test,
        )
        report = _runtime(
            small_artifact, n_devices=1, policy="edf"
        ).replay(trace)
        assert report.conserved
        deadline_shed = report.metrics["counters"].get(
            "rejected.deadline", 0
        )
        assert deadline_shed > 0
        assert report.completed + report.rejected == 60


class TestRuntimeLifecycle:
    def test_submit_before_start_is_typed(self, small_artifact):
        from repro.errors import ServeError

        runtime = _runtime(small_artifact)
        request = InferenceRequest(
            request_id=0, x=np.zeros(64, np.float32), arrival_ms=0.0
        )
        with pytest.raises(ServeError):
            runtime.submit(request)

    def test_context_manager_drains(self, small_artifact, digits_small):
        runtime = _runtime(small_artifact, n_devices=2)
        with runtime:
            for i in range(8):
                runtime.submit(
                    InferenceRequest(
                        request_id=i,
                        x=digits_small.x_test[i],
                        arrival_ms=float(i),
                    )
                )
        report = runtime.report()
        assert report.completed == 8
        assert report.conserved

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(n_devices=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch=0)

    def test_invalid_input_fails_typed_without_stopping_fleet(
        self, small_artifact, digits_small
    ):
        runtime = _runtime(small_artifact, n_devices=2)
        bad = InferenceRequest(
            request_id=0, x=np.full(64, np.nan), arrival_ms=0.0
        )
        good = InferenceRequest(
            request_id=1, x=digits_small.x_test[0], arrival_ms=0.0
        )
        with runtime:
            runtime.submit(bad)
            runtime.submit(good)
        report = runtime.report()
        assert report.conserved
        by_id = {o.request_id: o for o in report.outcomes}
        assert by_id[0].status == "failed"
        assert "invalid_input" in by_id[0].reason
        assert by_id[1].status == COMPLETED


class TestBatchingMetrics:
    def test_batches_amortize_dispatch_overhead(self, small_artifact,
                                                digits_small):
        # Same burst, batch size 1 vs 8: fewer dispatches, less total
        # overhead, so the batched fleet finishes sooner in sim time.
        def run(max_batch):
            trace = synthetic_trace(
                40, 1e6, 64, seed=7, inputs=digits_small.x_test
            )
            report = _runtime(
                small_artifact, n_devices=1, max_batch=max_batch
            ).replay(trace)
            assert report.completed == 40
            return report

        single = run(1)
        batched = run(8)
        dispatched = "batches.dispatched"
        assert single.metrics["counters"][dispatched] == 40
        assert batched.metrics["counters"][dispatched] < 40
        assert batched.makespan_ms < single.makespan_ms
