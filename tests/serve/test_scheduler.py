"""The bounded queue: policies, admission, batching, drain."""

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.serve import BoundedRequestQueue, InferenceRequest


def _request(request_id, arrival_ms=0.0, deadline_ms=None,
             avoid_device=None):
    return InferenceRequest(
        request_id=request_id,
        x=np.zeros(4, dtype=np.float32),
        arrival_ms=arrival_ms,
        deadline_ms=deadline_ms,
        avoid_device=avoid_device,
    )


class TestPolicies:
    def test_fifo_serves_in_arrival_order(self):
        queue = BoundedRequestQueue(policy="fifo", max_depth=8)
        for i in (0, 1, 2, 3):
            queue.offer(_request(i))
        batch = queue.take_batch(device_id=0, max_batch=4)
        assert [r.request_id for r in batch] == [0, 1, 2, 3]

    def test_edf_orders_by_deadline(self):
        queue = BoundedRequestQueue(policy="edf", max_depth=8)
        queue.offer(_request(0, deadline_ms=50.0))
        queue.offer(_request(1, deadline_ms=10.0))
        queue.offer(_request(2, deadline_ms=30.0))
        queue.offer(_request(3))                     # best-effort: last
        batch = queue.take_batch(device_id=0, max_batch=4)
        assert [r.request_id for r in batch] == [1, 2, 0, 3]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedRequestQueue(policy="lifo")


class TestAdmission:
    def test_queue_full_is_typed_rejection(self):
        queue = BoundedRequestQueue(max_depth=2)
        queue.offer(_request(0))
        queue.offer(_request(1))
        with pytest.raises(AdmissionError) as excinfo:
            queue.offer(_request(2))
        assert excinfo.value.reason == "queue_full"

    def test_force_bypasses_depth_bound(self):
        queue = BoundedRequestQueue(max_depth=1)
        queue.offer(_request(0))
        queue.offer(_request(1), force=True)         # retry path
        assert queue.depth == 2

    def test_closed_queue_sheds_with_reason(self):
        queue = BoundedRequestQueue(max_depth=4)
        queue.close()
        with pytest.raises(AdmissionError) as excinfo:
            queue.offer(_request(0))
        assert excinfo.value.reason == "draining"


class TestBatchingAndDrain:
    def test_batch_size_bounded(self):
        queue = BoundedRequestQueue(max_depth=16)
        for i in range(6):
            queue.offer(_request(i))
        assert len(queue.take_batch(device_id=0, max_batch=4)) == 4
        assert len(queue.take_batch(device_id=0, max_batch=4)) == 2

    def test_take_after_close_drains_then_signals_exit(self):
        queue = BoundedRequestQueue(max_depth=4)
        queue.offer(_request(0))
        queue.close()
        assert [r.request_id
                for r in queue.take_batch(0, max_batch=4)] == [0]
        queue.batch_done()
        assert queue.take_batch(0, max_batch=4) is None

    def test_no_exit_signal_while_batches_in_flight(self):
        # Another worker's in-flight batch may brown out and re-enter
        # the queue, so "closed and empty" alone must not signal exit.
        queue = BoundedRequestQueue(max_depth=4, n_devices=2)
        queue.offer(_request(0))
        queue.close()
        assert queue.take_batch(0, max_batch=4)          # in flight
        assert queue.take_batch(1, max_batch=4,
                                timeout=0.01) == []      # not None
        queue.offer(_request(0, avoid_device=0), force=True)  # retry
        retry = queue.take_batch(1, max_batch=4)
        assert [r.request_id for r in retry] == [0]
        queue.batch_done()
        queue.batch_done()
        assert queue.take_batch(1, max_batch=4) is None

    def test_empty_take_times_out(self):
        queue = BoundedRequestQueue(max_depth=4)
        assert queue.take_batch(0, max_batch=4, timeout=0.01) == []


class TestBrownoutAffinity:
    def test_avoided_device_skips_retry(self):
        queue = BoundedRequestQueue(max_depth=8, n_devices=2)
        queue.offer(_request(0, avoid_device=0), force=True)
        queue.offer(_request(1))
        batch = queue.take_batch(device_id=0, max_batch=4)
        assert [r.request_id for r in batch] == [1]
        assert queue.depth == 1                      # retry still queued
        other = queue.take_batch(device_id=1, max_batch=4)
        assert [r.request_id for r in other] == [0]

    def test_avoid_ignored_on_single_device_pool(self):
        queue = BoundedRequestQueue(max_depth=8, n_devices=1)
        queue.offer(_request(0, avoid_device=0), force=True)
        batch = queue.take_batch(device_id=0, max_batch=4)
        assert [r.request_id for r in batch] == [0]

    def test_avoid_honoured_during_drain(self):
        # Draining must not hand a retry back to the board that browned
        # it out: the other (still live) worker takes it instead.
        queue = BoundedRequestQueue(max_depth=8, n_devices=2)
        queue.offer(_request(0, avoid_device=0), force=True)
        queue.close()
        assert queue.take_batch(device_id=0, max_batch=4,
                                timeout=0.01) == []
        batch = queue.take_batch(device_id=1, max_batch=4)
        assert [r.request_id for r in batch] == [0]
