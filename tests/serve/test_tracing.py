"""The tracing layer: spans, the bounded collector, exporters.

Covers the ISSUE-4 tentpole (span recording through a real replay, the
Chrome trace-event exporter round-trip, per-request timelines, the
bounded collector) plus the satellite validation fixes in
``synthetic_trace``.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    COMPLETED,
    FaultPlan,
    ServeConfig,
    ServeRuntime,
    Span,
    TraceCollector,
    synthetic_trace,
    verify_trace_invariants,
)
from repro.serve.tracing import TERMINAL_KINDS


def _replay(artifact, inputs, **overrides):
    defaults = dict(n_devices=2, max_queue_depth=256,
                    max_queue_wait_ms=None)
    defaults.update(overrides)
    trace = synthetic_trace(30, 2000.0, 64, seed=21, inputs=inputs)
    return ServeRuntime(artifact, ServeConfig(**defaults)).replay(trace)


class TestSpan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Span(kind="telemetry", start_ms=0.0, end_ms=1.0)

    def test_terminal_kinds(self):
        assert Span(kind="completed", start_ms=1.0, end_ms=1.0).terminal
        assert Span(kind="shed", start_ms=1.0, end_ms=1.0).terminal
        assert not Span(kind="execute", start_ms=0.0, end_ms=1.0).terminal


class TestTraceCollector:
    def test_bounded_capacity_drops_and_counts(self):
        collector = TraceCollector(capacity=3)
        for i in range(5):
            accepted = collector.record(
                Span(kind="queued", start_ms=float(i),
                     end_ms=float(i + 1), request_id=i)
            )
            assert accepted == (i < 3)
        assert len(collector) == 3
        assert collector.dropped == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceCollector(capacity=0)

    def test_request_spans_sorted_by_time(self):
        collector = TraceCollector()
        collector.record(Span(kind="execute", start_ms=5.0, end_ms=6.0,
                              request_id=7, device_id=0))
        collector.record(Span(kind="queued", start_ms=0.0, end_ms=5.0,
                              request_id=7))
        starts = [s.start_ms for s in collector.request_spans(7)]
        assert starts == sorted(starts)
        assert collector.request_ids() == (7,)

    def test_timeline_renders_unknown_request(self):
        assert "no spans" in TraceCollector().timeline(99)


class TestReplayTracing:
    def test_clean_replay_spans_and_timeline(self, small_artifact,
                                             digits_small):
        report = _replay(small_artifact, digits_small.x_test)
        assert report.completed == 30
        tracer = report.trace
        assert tracer is not None and tracer.dropped == 0
        # Every request: admitted -> queued -> execute -> completed.
        for outcome in report.outcomes:
            kinds = [s.kind for s in
                     tracer.request_spans(outcome.request_id)]
            assert kinds == ["admitted", "queued", "execute", "completed"]
            text = tracer.timeline(outcome.request_id)
            assert f"request {outcome.request_id}" in text
            assert "terminal=completed" in text
            assert f"device.{outcome.device_id}" in text

    def test_tracing_can_be_disabled(self, small_artifact, digits_small):
        report = _replay(small_artifact, digits_small.x_test,
                         tracing=False)
        assert report.trace is None
        assert report.completed == 30
        assert verify_trace_invariants(report)   # flags the missing trace

    def test_brownout_replay_traces_retries(self, small_artifact,
                                            digits_small):
        plan = FaultPlan(brownout_rate=1.0, faulty_devices=frozenset({0}))
        report = _replay(small_artifact, digits_small.x_test,
                         n_devices=2, fault_plan=plan)
        assert report.completed == 30
        tracer = report.trace
        retried = [o for o in report.outcomes if o.attempts > 1]
        assert retried, "fault plan should have caused retries"
        for outcome in retried:
            kinds = [s.kind for s in
                     tracer.request_spans(outcome.request_id)]
            assert "retry" in kinds        # wasted work on device 0
            assert "backoff" in kinds      # delay before the retry
            assert kinds.count("execute") == 1
        assert not verify_trace_invariants(report)


class TestChromeTraceExport:
    def test_round_trip_and_per_device_monotonicity(
        self, small_artifact, digits_small, tmp_path
    ):
        plan = FaultPlan(brownout_rate=0.4, seed=3)
        report = _replay(small_artifact, digits_small.x_test,
                         n_devices=3, fault_plan=plan, max_retries=3)
        path = tmp_path / "trace.json"
        report.trace.write_chrome_trace(path, labels={"engine": "fastpath"})

        payload = json.loads(path.read_text())    # JSON loads
        assert payload["displayTimeUnit"] == "ms"
        assert payload["metadata"]["engine"] == "fastpath"
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] in ("X", "i")]
        assert spans, "no span events exported"

        # Events are sorted by timestamp.
        stamps = [e["ts"] for e in spans]
        assert stamps == sorted(stamps)

        # Track metadata: a queue thread plus one per device.
        names = {e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert "queue" in names
        assert {"device.0", "device.1", "device.2"} <= names

        # Per-device complete events are monotone and non-overlapping.
        by_tid = {}
        for event in spans:
            if event["ph"] == "X" and event["tid"] != 0:
                by_tid.setdefault(event["tid"], []).append(event)
        assert by_tid, "no device-track events"
        for events_on_device in by_tid.values():
            end = -1.0
            for event in events_on_device:
                assert event["ts"] >= end - 1e-3
                end = event["ts"] + event["dur"]

        # Exactly one terminal event per offered request.
        terminal = {}
        for event in spans:
            if event["args"].get("terminal"):
                rid = event["args"]["request_id"]
                terminal[rid] = terminal.get(rid, 0) + 1
                assert event["name"] in TERMINAL_KINDS
        assert sorted(terminal) == sorted(
            o.request_id for o in report.outcomes
        )
        assert set(terminal.values()) == {1}

    def test_report_trace_accessor_matches_runtime(self, small_artifact,
                                                   digits_small):
        trace = synthetic_trace(10, 2000.0, 64, seed=23,
                                inputs=digits_small.x_test)
        runtime = ServeRuntime(
            small_artifact,
            ServeConfig(n_devices=2, max_queue_wait_ms=None),
        )
        report = runtime.replay(trace)
        assert report.trace is runtime.tracer
        assert all(o.status == COMPLETED for o in report.outcomes)


class TestSyntheticTraceValidation:
    """ISSUE-4 satellite: fail at construction, not inside devices."""

    def test_mismatched_input_features_rejected(self):
        inputs = np.zeros((4, 10), dtype=np.float32)
        with pytest.raises(ConfigurationError, match="features"):
            synthetic_trace(5, 100.0, 64, inputs=inputs)

    def test_matching_input_features_accepted(self):
        inputs = np.zeros((4, 64), dtype=np.float32)
        trace = synthetic_trace(5, 100.0, 64, inputs=inputs)
        assert len(trace) == 5

    def test_zero_deadline_rejected(self):
        with pytest.raises(ConfigurationError, match="deadline"):
            synthetic_trace(5, 100.0, 64, deadline_ms=0.0)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ConfigurationError, match="deadline"):
            synthetic_trace(5, 100.0, 64, deadline_ms=-3.0)

    def test_positive_deadline_accepted(self):
        trace = synthetic_trace(5, 100.0, 64, deadline_ms=4.0)
        assert all(
            r.deadline_ms == pytest.approx(r.arrival_ms + 4.0)
            for r in trace
        )


class TestFleetNamespacing:
    """ISSUE-7 satellite: per-fleet device/track identities."""

    def test_collector_stamps_namespace_on_spans(self):
        collector = TraceCollector(namespace="fleet-3")
        collector.record(Span(kind="execute", start_ms=0.0, end_ms=1.0,
                              device_id=1))
        span = collector.spans()[0]
        assert span.fleet == "fleet-3"

    def test_existing_fleet_stamp_not_overwritten(self):
        collector = TraceCollector(namespace="fleet-3")
        collector.record(Span(kind="execute", start_ms=0.0, end_ms=1.0,
                              fleet="fleet-9"))
        assert collector.spans()[0].fleet == "fleet-9"

    def test_track_names_carry_namespace(self):
        collector = TraceCollector(namespace="fleet-0")
        assert collector._track_name(2) == "fleet-0/device.2"
        assert collector._track_name(None) == "fleet-0/queue"
        plain = TraceCollector()
        assert plain._track_name(2) == "device.2"

    def test_two_fleets_export_one_chrome_trace(
        self, small_artifact, digits_small
    ):
        """Regression: two namespaced runtimes merge into one trace
        with distinguishable per-fleet tracks and no tid collisions."""
        from repro.serve import merged_chrome_trace

        collectors = []
        for fleet in ("fleet-0", "fleet-1"):
            trace = synthetic_trace(12, 2000.0, 64, seed=11,
                                    inputs=digits_small.x_test)
            runtime = ServeRuntime(
                small_artifact,
                ServeConfig(n_devices=2, max_queue_depth=64,
                            trace_namespace=fleet),
            )
            report = runtime.replay(trace)
            assert not verify_trace_invariants(report)
            collectors.append(report.trace)

        merged = merged_chrome_trace(
            collectors, labels={"scenario": "two-fleet"}
        )
        merged = json.loads(json.dumps(merged))    # serializable
        events = merged["traceEvents"]
        assert merged["metadata"] == {"scenario": "two-fleet"}

        # One process per fleet, named by namespace.
        process_names = {
            e["pid"]: e["args"]["name"] for e in events
            if e.get("name") == "process_name"
        }
        assert process_names == {
            0: "repro.serve/fleet-0", 1: "repro.serve/fleet-1",
        }
        # Track names are namespaced and unique per (pid, tid).
        tracks = {
            (e["pid"], e["tid"]): e["args"]["name"] for e in events
            if e.get("name") == "thread_name"
        }
        assert tracks[(0, 1)] == "fleet-0/device.0"
        assert tracks[(1, 2)] == "fleet-1/device.1"
        assert len(set(tracks.values())) == len(tracks)
        # Every span event is attributed to its fleet.
        for event in events:
            if event.get("cat") == "serve":
                expected = f"fleet-{event['pid']}"
                assert event["args"]["fleet"] == expected
